//! Deterministic bounded worker pool for the experiment harness.
//!
//! Every outer loop in `pim-exp` — grid cells, design-space sweep cells,
//! `--repeat` iterations, fleet scaling/skew points — is a map over
//! *independent* jobs: each job is a pure function of its spec (the
//! simulator is deterministic under a seed and shares no state between
//! runs). [`WorkerPool::run`] fans such a job list out over a bounded set
//! of threads and collects the results **by job index**, so tables and
//! JSON built from the result vector are bit-identical for any worker
//! count — the same property [`pim_fleet::runtime`] pins for its shard
//! workers, lifted one level up to whole experiment points.
//!
//! ## Job independence rules
//!
//! A loop may be routed through the pool only if its iterations
//!
//! * share no mutable state (caches used from jobs must be internally
//!   synchronised, as [`crate::cache::SimCache`] is),
//! * derive every PRNG seed from the job spec, never from execution order,
//! * and write nothing ordered to stdout (progress chatter on stderr may
//!   interleave; the report/JSON layer renders only from the collected,
//!   index-ordered results).
//!
//! Wall-clock *measurement* loops are excluded: threaded-executor cells
//! time real OS threads, and running several at once would contend for the
//! very cores being measured. Callers force [`WorkerPool::serial`] there.
//!
//! ## One worker budget, shared with `pim-fleet`
//!
//! A fleet sweep point is itself parallel inside: [`pim_fleet::FleetConfig`]
//! spawns `host_workers` shard-simulation threads per round. Running N
//! points under an N-worker pool with each point also claiming every core
//! would oversubscribe the host quadratically. The pool owns the *single*
//! thread budget: [`WorkerPool::inner_budget`] splits `workers()` between
//! the concurrently running outer jobs, and the fleet sweep plants that
//! quota into each point's `host_workers` — so outer × inner ≤ budget,
//! always. (`host_workers` affects wall-clock speed only, never results,
//! so the split cannot perturb any report.)

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A bounded worker pool that maps independent jobs to index-ordered
/// results. Cheap to construct (it holds only the worker budget; threads
/// are scoped per [`WorkerPool::run`] call).
#[derive(Debug, Clone)]
pub struct WorkerPool {
    workers: usize,
}

impl Default for WorkerPool {
    /// A pool with one worker per available core.
    fn default() -> Self {
        WorkerPool::new(0)
    }
}

impl WorkerPool {
    /// Creates a pool with `workers` threads; `0` means one per available
    /// core (the `--workers` default).
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            workers
        };
        WorkerPool { workers }
    }

    /// A single-worker pool: jobs run serially on the calling thread, in
    /// order. Used for wall-clock-measuring loops (threaded executor) and
    /// as the `--workers 1` baseline.
    pub fn serial() -> Self {
        WorkerPool { workers: 1 }
    }

    /// The resolved worker budget (≥ 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Splits the worker budget between `outer_jobs` concurrently running
    /// jobs: the thread quota each job may itself spend on inner
    /// parallelism (e.g. a fleet point's `host_workers`). At most
    /// `min(workers, outer_jobs)` jobs run at once, so
    /// `concurrent jobs × inner_budget ≤ workers` always holds.
    pub fn inner_budget(&self, outer_jobs: usize) -> usize {
        let concurrent = self.workers.min(outer_jobs.max(1));
        (self.workers / concurrent).max(1)
    }

    /// Runs `job` over every element of `jobs` and returns the results in
    /// job order: `result[i] = job(i, jobs[i])`, regardless of worker
    /// count or completion order.
    ///
    /// With one worker (or ≤ 1 job) the jobs run serially on the calling
    /// thread — the `--workers 1` baseline that parallel runs must match
    /// bit for bit.
    ///
    /// # Panics
    ///
    /// A panic inside `job` (e.g. a workload invariant violation)
    /// propagates to the caller once the scope unwinds.
    pub fn run<I, T, F>(&self, jobs: Vec<I>, job: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let n = jobs.len();
        if self.workers <= 1 || n <= 1 {
            return jobs.into_iter().enumerate().map(|(i, input)| job(i, input)).collect();
        }
        // Hand out jobs through an atomic cursor; park each result in its
        // job's slot so collection order is the job order, not the
        // completion order.
        let inputs: Vec<Mutex<Option<I>>> =
            jobs.into_iter().map(|input| Mutex::new(Some(input))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let input = inputs[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("each job index is claimed exactly once");
                    let output = job(i, input);
                    *results[i].lock().expect("result slot poisoned") = Some(output);
                });
            }
        });
        results
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .unwrap_or_else(|| panic!("job {i} finished without a result"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicIsize;

    #[test]
    fn results_are_collected_in_job_order_for_any_worker_count() {
        let jobs: Vec<usize> = (0..64).collect();
        let expected: Vec<usize> = jobs.iter().map(|&v| v * v).collect();
        for workers in [1, 2, 3, 8, 64, 200] {
            let pool = WorkerPool::new(workers);
            let got = pool.run(jobs.clone(), |i, v| {
                assert_eq!(i, v, "job index must match the job's position");
                // Stagger completion so late-indexed jobs often finish
                // first — ordering must come from collection, not timing.
                std::thread::sleep(std::time::Duration::from_micros(((64 - v) % 7) as u64 * 50));
                v * v
            });
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn pool_never_runs_more_jobs_at_once_than_its_budget() {
        let pool = WorkerPool::new(3);
        let running = AtomicIsize::new(0);
        let peak = AtomicIsize::new(0);
        pool.run((0..32).collect::<Vec<usize>>(), |_, _| {
            let now = running.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            running.fetch_sub(1, Ordering::SeqCst);
        });
        let peak = peak.load(Ordering::SeqCst);
        assert!(peak <= 3, "peak concurrency {peak} exceeded the 3-worker budget");
    }

    #[test]
    fn zero_workers_means_available_cores_and_budget_is_at_least_one() {
        let pool = WorkerPool::new(0);
        assert!(pool.workers() >= 1);
        assert_eq!(WorkerPool::serial().workers(), 1);
        assert_eq!(pool.run(vec![1, 2, 3], |_, v| v + 1), vec![2, 3, 4]);
    }

    #[test]
    fn inner_budget_splits_without_oversubscribing() {
        // outer concurrency × inner budget ≤ total budget, for a spread of
        // shapes (more jobs than workers, fewer, equal, degenerate).
        for (workers, jobs) in [(8, 2), (8, 8), (8, 32), (2, 4), (1, 10), (3, 2), (5, 1)] {
            let pool = WorkerPool::new(workers);
            let inner = pool.inner_budget(jobs);
            let concurrent = workers.min(jobs.max(1));
            assert!(inner >= 1, "every job may use at least one thread");
            assert!(
                concurrent * inner <= workers,
                "workers={workers} jobs={jobs}: {concurrent} × {inner} oversubscribes"
            );
        }
        assert_eq!(WorkerPool::new(8).inner_budget(2), 4);
        assert_eq!(WorkerPool::new(8).inner_budget(0), 8);
    }

    #[test]
    fn empty_job_lists_are_fine() {
        let pool = WorkerPool::new(4);
        let got: Vec<u32> = pool.run(Vec::<u32>::new(), |_, v| v);
        assert!(got.is_empty());
    }
}
