//! Minimal JSON emission and validation for `pim-exp --json-out`.
//!
//! The workspace's `serde` is an offline no-op stub (see `vendor/README.md`),
//! so profile dumps are serialised by hand: [`Json`] is a tiny value model
//! with a spec-compliant writer (string escaping, `null` for non-finite
//! floats) and [`parse`] is a strict recursive-descent reader used by the CI
//! smoke test to prove the emitted files parse. Once the real serde lands,
//! this module shrinks to a `serde_json` call.
//!
//! [`crate::design_space::DesignSpaceSweep`] dumps through
//! [`sweeps_to_json`]: one object per swept cell carrying the run
//! coordinates (workload, design, placement, executor, tasklets) and the
//! full [`pim_stm::ExecProfile`] — counts, abort histogram, per-phase times
//! in the executor-native unit, DMA traffic and the per-commit efficiency
//! metrics — so external plotting needs no re-run.
//!
//! `--fleet` runs dump through [`fleet_to_json`] instead: one object
//! holding the weak-scaling curve and the skew sweep, each point a full
//! [`pim_fleet::FleetReport`] (totals, merged profile, imbalance summary,
//! per-primitive transfer ledger, rebalance and pipeline panels, the
//! per-round throughput series, analytic cross-check total). Repeated
//! points carry a `repeat_spread` block, and rebalanced skew points their
//! static baseline, recovered throughput and break-even round. When the
//! online tuner ran, each point also carries a `tuning` block: aggregate
//! window/switch counts plus a per-shard array with each shard's final
//! settled knob values (`knobs` is `null` on shards whose tuner never
//! fired).
//!
//! `--grid` searches dump through [`grid_to_json`]: one object with the
//! search coordinates (`mode: "grid"`, workload, placement, tasklets,
//! scale, seed, the burst-cap ladder) and a ranked `cells` array — each
//! cell its full knob vector (`stm` as the grid composition name, `retry`,
//! `read_strategy`, `write_back`, `lock_order`, `max_burst_words`), its
//! measured `throughput_tx_per_sec`, `makespan_seconds`, `total_time`,
//! `commits`/`aborts`/`abort_rate`, its 1-based `rank`, its
//! `slowdown_vs_best` (1.0 for the winner) and an `is_default` marker on
//! the static-defaults cell. A `cache` object records the simulation-cache
//! movement of the search itself (`hits`, `misses`, `disk_hits`,
//! `bytes_read`, `bytes_written`), so a warm re-run is distinguishable
//! from a cold one in the dump alone.
//!
//! `--service` sweeps dump through [`service_to_json`]: one object with
//! the sweep coordinates (`mode: "service"`, the arrival shape, mix,
//! skew, STM design/tier, tasklets, scale, seed, repeat, the request
//! count, the rate ladder and a `fleet` block when sharded) and a
//! `points` / `fleet_points` array, one object per offered rate ×
//! executor. Each point carries the rates (`offered_rate`,
//! `achieved_rate`), the commit/abort totals, the makespan, and a
//! `latency` object with the three panel components — `queueing`,
//! `service`, `sojourn` — each as quantile ticks (`p50`/`p95`/`p99`/
//! `max`, exact integers in the executor's native unit) plus the same
//! quantiles converted to seconds. `--repeat` points carry a
//! `repeat_spread` block with the mean ± CI95 of the p99 sojourn and the
//! achieved rate.

use pim_fleet::{FleetReport, PrimitiveStats};
use pim_sim::Phase;
use pim_stm::{AbortReason, ExecProfile};

use crate::design_space::DesignSpaceSweep;
use crate::fleet::FleetSweep;
use crate::grid::GridSearch;
use crate::service::{ServiceSpread, ServiceSweep};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, emitted exactly (no f64 rounding, so 64-bit
    /// seeds and counters survive the dump bit-for-bit).
    UInt(u64),
    /// A number (emitted as `null` when not finite).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for an unsigned counter or identifier (exact at full
    /// 64-bit precision).
    pub fn u64(value: u64) -> Json {
        Json::UInt(value)
    }

    /// Shorthand for a string value.
    pub fn str(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// Looks up a key in an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&format!("{n}")),
            Json::Num(n) if n.is_finite() => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            // JSON has no NaN/Infinity literal.
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serialises the value as compact JSON (the `ToString` surface).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a human-readable message naming the byte offset of the first
/// syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing characters at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }
}

/// Serialises every cell of `sweeps` as one flat JSON array of per-cell
/// objects (see the [module documentation](self) for the schema).
pub fn sweeps_to_json(sweeps: &[DesignSpaceSweep]) -> Json {
    let mut cells = Vec::new();
    for sweep in sweeps {
        for point in &sweep.points {
            let p = &point.profile;
            let phases = Json::Obj(
                Phase::ALL
                    .iter()
                    .map(|&ph| (ph.label().to_string(), Json::u64(p.phase(ph))))
                    .collect(),
            );
            let aborts_by_reason = Json::Obj(
                AbortReason::ALL
                    .iter()
                    .map(|&r| (r.label().to_string(), Json::u64(p.aborts_for(r))))
                    .collect(),
            );
            cells.push(Json::Obj(vec![
                ("workload".into(), Json::str(sweep.workload.name())),
                ("placement".into(), Json::str(sweep.placement.name())),
                ("executor".into(), Json::str(sweep.executor.name())),
                ("stm".into(), Json::str(point.kind.name())),
                ("tasklets".into(), Json::u64(point.tasklets as u64)),
                ("scale".into(), Json::Num(sweep.scale)),
                ("seed".into(), Json::u64(sweep.seed)),
                ("read_strategy".into(), Json::str(sweep.read_strategy.name())),
                ("retry".into(), Json::str(sweep.retry.name())),
                ("tune".into(), Json::str(sweep.tune.to_string())),
                ("tune_windows".into(), Json::u64(p.core.tune_windows)),
                ("tune_switches".into(), Json::u64(p.core.tune_switches)),
                ("max_burst_words".into(), Json::u64(u64::from(sweep.max_burst_words))),
                (
                    "record_words".into(),
                    sweep.record_words.map_or(Json::Null, |w| Json::u64(u64::from(w))),
                ),
                ("time_unit".into(), Json::str(p.time_domain.unit())),
                ("commits".into(), Json::u64(point.commits)),
                ("aborts".into(), Json::u64(point.aborts)),
                ("abort_rate".into(), Json::Num(point.abort_rate)),
                (
                    "throughput_tx_per_sec".into(),
                    point.throughput_tx_per_sec.map_or(Json::Null, Json::Num),
                ),
                ("makespan_seconds".into(), point.makespan_seconds.map_or(Json::Null, Json::Num)),
                ("dma_setups".into(), Json::u64(p.dma_setups())),
                ("dma_words".into(), Json::u64(p.dma_words())),
                ("dma_setups_per_commit".into(), Json::Num(p.dma_setups_per_commit())),
                ("dma_words_per_commit".into(), Json::Num(p.dma_words_per_commit())),
                ("dma_bytes_per_commit".into(), Json::Num(p.dma_bytes_per_commit())),
                ("backoff_time".into(), Json::u64(p.backoff_time())),
                ("total_time".into(), Json::u64(p.total_time())),
                ("phases".into(), phases),
                ("aborts_by_reason".into(), aborts_by_reason),
                (
                    "repeat_spread".into(),
                    point.spread.as_ref().map_or(Json::Null, |s| {
                        Json::Obj(vec![
                            ("runs".into(), Json::u64(s.runs as u64)),
                            ("min_total_time".into(), Json::u64(s.min_total_time)),
                            ("median_total_time".into(), Json::u64(s.median_total_time)),
                            ("max_total_time".into(), Json::u64(s.max_total_time)),
                            ("mean_total_time".into(), Json::Num(s.mean_total_time)),
                            ("ci95_total_time".into(), Json::Num(s.ci95_total_time)),
                            ("min_aborts".into(), Json::u64(s.min_aborts)),
                            ("max_aborts".into(), Json::u64(s.max_aborts)),
                        ])
                    }),
                ),
            ]));
        }
    }
    Json::Arr(cells)
}

/// Serialises a merged [`ExecProfile`] with the same keys the per-cell
/// sweep dump uses (counts, abort histogram, phases, DMA traffic).
fn profile_to_json(p: &ExecProfile) -> Json {
    Json::Obj(vec![
        ("time_unit".into(), Json::str(p.time_domain.unit())),
        ("commits".into(), Json::u64(p.commits())),
        ("aborts".into(), Json::u64(p.aborts())),
        ("abort_rate".into(), Json::Num(p.abort_rate())),
        ("total_time".into(), Json::u64(p.total_time())),
        ("backoff_time".into(), Json::u64(p.backoff_time())),
        ("dma_setups".into(), Json::u64(p.dma_setups())),
        ("dma_words".into(), Json::u64(p.dma_words())),
        ("tune_windows".into(), Json::u64(p.core.tune_windows)),
        ("tune_switches".into(), Json::u64(p.core.tune_switches)),
        (
            "phases".into(),
            Json::Obj(
                Phase::ALL
                    .iter()
                    .map(|&ph| (ph.label().to_string(), Json::u64(p.phase(ph))))
                    .collect(),
            ),
        ),
        (
            "aborts_by_reason".into(),
            Json::Obj(
                AbortReason::ALL
                    .iter()
                    .map(|&r| (r.label().to_string(), Json::u64(p.aborts_for(r))))
                    .collect(),
            ),
        ),
    ])
}

fn primitive_to_json(stats: &PrimitiveStats) -> Json {
    Json::Obj(vec![
        ("calls".into(), Json::u64(stats.calls)),
        ("bytes".into(), Json::u64(stats.bytes)),
        ("seconds".into(), Json::Num(stats.seconds)),
    ])
}

fn fleet_spread_to_json(spread: Option<&crate::fleet::FleetSpread>) -> Json {
    spread.map_or(Json::Null, |s| {
        Json::Obj(vec![
            ("runs".into(), Json::u64(s.runs as u64)),
            ("min_makespan_seconds".into(), Json::Num(s.min_makespan_seconds)),
            ("mean_makespan_seconds".into(), Json::Num(s.mean_makespan_seconds)),
            ("max_makespan_seconds".into(), Json::Num(s.max_makespan_seconds)),
            ("ci95_makespan_seconds".into(), Json::Num(s.ci95_makespan_seconds)),
            ("mean_tx_per_sec".into(), Json::Num(s.mean_tx_per_sec)),
            ("ci95_tx_per_sec".into(), Json::Num(s.ci95_tx_per_sec)),
        ])
    })
}

/// Serialises one fleet report: totals, the merged profile, the imbalance
/// summary, the per-primitive transfer ledger, the pipeline and rebalance
/// panels, the per-round throughput series and the analytic cross-check
/// total.
fn fleet_report_to_json(r: &FleetReport) -> Json {
    let per_round = r.round_throughput_series();
    let cumulative = r.cumulative_throughput_series();
    let rounds_detail = Json::Arr(
        r.rounds
            .iter()
            .zip(per_round.iter().zip(&cumulative))
            .map(|(round, (&tx, &cum))| {
                Json::Obj(vec![
                    ("round".into(), Json::u64(round.round as u64)),
                    ("commits".into(), Json::u64(round.commits)),
                    ("migrated_keys".into(), Json::u64(round.migrated_keys)),
                    ("overlapped".into(), Json::Bool(round.overlapped)),
                    ("hidden_seconds".into(), Json::Num(round.hidden_seconds)),
                    ("pipelined_seconds".into(), Json::Num(round.pipelined_seconds())),
                    ("tx_per_sec".into(), Json::Num(tx)),
                    ("cumulative_tx_per_sec".into(), Json::Num(cum)),
                ])
            })
            .collect(),
    );
    Json::Obj(vec![
        ("n_dpus".into(), Json::u64(r.n_dpus as u64)),
        ("tasklets".into(), Json::u64(r.tasklets as u64)),
        ("routing".into(), Json::str(r.routing.label())),
        ("global_txns".into(), Json::u64(r.global_txns)),
        ("dispatched_subtxns".into(), Json::u64(r.dispatched_subtxns)),
        ("commits".into(), Json::u64(r.total_commits)),
        ("aborts".into(), Json::u64(r.total_aborts)),
        ("rejected".into(), Json::u64(r.total_rejected)),
        ("increments".into(), Json::u64(r.total_increments)),
        ("fingerprint".into(), Json::u64(r.fingerprint)),
        ("rounds".into(), Json::u64(r.rounds.len() as u64)),
        ("makespan_seconds".into(), Json::Num(r.makespan_seconds)),
        ("throughput_tx_per_sec".into(), Json::Num(r.throughput_tx_per_sec())),
        ("dpu_barrier_seconds".into(), Json::Num(r.dpu_barrier_seconds())),
        ("host_seconds".into(), Json::Num(r.host_seconds())),
        ("analytic_total_seconds".into(), Json::Num(r.analytic_total_seconds())),
        (
            "imbalance".into(),
            Json::Obj(vec![
                ("hottest_shard".into(), Json::u64(u64::from(r.imbalance.hottest_shard))),
                ("hottest_commit_share".into(), Json::Num(r.imbalance.hottest_commit_share)),
                ("max_over_mean_commits".into(), Json::Num(r.imbalance.max_over_mean_commits)),
                ("cv_commits".into(), Json::Num(r.imbalance.cv_commits)),
                ("max_over_mean_busy".into(), Json::Num(r.imbalance.max_over_mean_busy)),
                ("cv_busy".into(), Json::Num(r.imbalance.cv_busy)),
            ]),
        ),
        (
            "transfers".into(),
            Json::Obj(vec![
                ("broadcast".into(), primitive_to_json(&r.ledger.broadcast)),
                ("scatter".into(), primitive_to_json(&r.ledger.scatter)),
                ("gather".into(), primitive_to_json(&r.ledger.gather)),
                ("total_bytes".into(), Json::u64(r.ledger.total_bytes())),
                ("total_seconds".into(), Json::Num(r.ledger.total_seconds())),
            ]),
        ),
        (
            "pipeline".into(),
            Json::Obj(vec![
                ("enabled".into(), Json::Bool(r.pipeline.enabled)),
                ("overlapped_rounds".into(), Json::u64(r.pipeline.overlapped_rounds)),
                ("stalled_rounds".into(), Json::u64(r.pipeline.stalled_rounds)),
                ("hidden_seconds".into(), Json::Num(r.pipeline.hidden_seconds)),
                ("exposed_pre_seconds".into(), Json::Num(r.pipeline.exposed_pre_seconds)),
            ]),
        ),
        (
            "rebalance".into(),
            Json::Obj(vec![
                ("policy".into(), Json::str(r.rebalance.policy.to_string())),
                ("rebalances".into(), Json::u64(r.rebalance.rebalances)),
                ("migrated_keys".into(), Json::u64(r.rebalance.migrated_keys)),
                ("migration_bytes".into(), Json::u64(r.rebalance.migration_bytes)),
                ("migration_seconds".into(), Json::Num(r.rebalance.migration_seconds)),
            ]),
        ),
        (
            "tuning".into(),
            Json::Obj(vec![
                ("windows".into(), Json::u64(r.profile.core.tune_windows)),
                ("switches".into(), Json::u64(r.profile.core.tune_switches)),
                (
                    "shards".into(),
                    Json::Arr(
                        r.shards
                            .iter()
                            .map(|s| {
                                Json::Obj(vec![
                                    ("shard".into(), Json::u64(u64::from(s.shard))),
                                    ("windows".into(), Json::u64(s.tune_windows)),
                                    ("switches".into(), Json::u64(s.tune_switches)),
                                    (
                                        "knobs".into(),
                                        s.tuned_knobs.map_or(Json::Null, |k| {
                                            Json::Obj(vec![
                                                ("retry".into(), Json::str(k.retry.name())),
                                                (
                                                    "read_strategy".into(),
                                                    Json::str(k.read_strategy.name()),
                                                ),
                                                (
                                                    "max_burst_words".into(),
                                                    Json::u64(u64::from(k.max_burst_words)),
                                                ),
                                                (
                                                    "lock_order".into(),
                                                    Json::str(k.lock_order.name()),
                                                ),
                                            ])
                                        }),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("rounds_detail".into(), rounds_detail),
        ("profile".into(), profile_to_json(&r.profile)),
    ])
}

/// Serialises a whole `--fleet` sweep: the weak-scaling curve and the skew
/// sweep, each point carrying a full [`FleetReport`] object.
pub fn fleet_to_json(sweep: &FleetSweep) -> Json {
    Json::Obj(vec![
        ("mode".into(), Json::str("fleet")),
        ("stm".into(), Json::str(sweep.options.kind.name())),
        ("routing".into(), Json::str(sweep.options.routing.label())),
        ("scale".into(), Json::Num(sweep.options.scale)),
        ("seed".into(), Json::u64(sweep.options.seed)),
        ("rebalance_policy".into(), Json::str(sweep.options.rebalance.to_string())),
        ("overlap".into(), Json::Bool(sweep.options.overlap)),
        ("repeat".into(), Json::u64(sweep.options.repeat as u64)),
        ("phases".into(), Json::u64(u64::from(sweep.options.phases))),
        ("tune".into(), Json::str(sweep.options.tune.to_string())),
        ("keys_per_dpu".into(), Json::u64(u64::from(sweep.keys_per_dpu))),
        ("txns_per_dpu".into(), Json::u64(u64::from(sweep.txns_per_dpu))),
        (
            "scaling".into(),
            Json::Arr(
                sweep
                    .scaling
                    .iter()
                    .map(|p| {
                        let Json::Obj(mut fields) = fleet_report_to_json(&p.report) else {
                            unreachable!("fleet reports serialise as objects")
                        };
                        fields.push((
                            "repeat_spread".into(),
                            fleet_spread_to_json(p.spread.as_ref()),
                        ));
                        Json::Obj(fields)
                    })
                    .collect(),
            ),
        ),
        (
            "skew".into(),
            Json::Arr(
                sweep
                    .skew
                    .iter()
                    .map(|p| {
                        let mut obj = vec![("theta".into(), Json::Num(p.theta))];
                        let Json::Obj(fields) = fleet_report_to_json(&p.report) else {
                            unreachable!("fleet reports serialise as objects")
                        };
                        obj.extend(fields);
                        obj.push(("repeat_spread".into(), fleet_spread_to_json(p.spread.as_ref())));
                        obj.push((
                            "baseline_tx_per_sec".into(),
                            p.baseline
                                .as_ref()
                                .map_or(Json::Null, |b| Json::Num(b.throughput_tx_per_sec())),
                        ));
                        obj.push((
                            "recovered_throughput".into(),
                            p.recovered_tx_per_sec().map_or(Json::Null, Json::Num),
                        ));
                        obj.push((
                            "break_even_round".into(),
                            p.break_even_round().map_or(Json::Null, |r| Json::u64(r as u64)),
                        ));
                        Json::Obj(obj)
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Serialises a `--grid` full-grid search: the search coordinates and the
/// ranked cell array (see the [module documentation](self) for the schema).
pub fn grid_to_json(search: &GridSearch) -> Json {
    Json::Obj(vec![
        ("mode".into(), Json::str("grid")),
        ("workload".into(), Json::str(search.workload.name())),
        ("placement".into(), Json::str(search.placement.name())),
        ("tasklets".into(), Json::u64(search.tasklets as u64)),
        ("scale".into(), Json::Num(search.scale)),
        ("seed".into(), Json::u64(search.seed)),
        ("caps".into(), Json::Arr(search.caps.iter().map(|&c| Json::u64(u64::from(c))).collect())),
        (
            "cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::u64(search.cache.hits)),
                ("misses".into(), Json::u64(search.cache.misses)),
                ("disk_hits".into(), Json::u64(search.cache.disk_hits)),
                ("bytes_read".into(), Json::u64(search.cache.bytes_read)),
                ("bytes_written".into(), Json::u64(search.cache.bytes_written)),
            ]),
        ),
        (
            "cells".into(),
            Json::Arr(
                search
                    .cells
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("rank".into(), Json::u64(c.rank as u64)),
                            ("stm".into(), Json::str(c.spec.kind.grid_name())),
                            ("retry".into(), Json::str(c.spec.retry.name())),
                            ("read_strategy".into(), Json::str(c.spec.read_strategy.name())),
                            ("write_back".into(), Json::str(c.spec.write_back.name())),
                            ("lock_order".into(), Json::str(c.spec.lock_order.name())),
                            (
                                "max_burst_words".into(),
                                Json::u64(u64::from(c.spec.max_burst_words)),
                            ),
                            ("throughput_tx_per_sec".into(), Json::Num(c.throughput_tx_per_sec)),
                            ("makespan_seconds".into(), Json::Num(c.makespan_seconds)),
                            ("total_time".into(), Json::u64(c.total_time)),
                            ("commits".into(), Json::u64(c.commits)),
                            ("aborts".into(), Json::u64(c.aborts)),
                            ("abort_rate".into(), Json::Num(c.abort_rate)),
                            ("slowdown_vs_best".into(), Json::Num(c.slowdown_vs_best)),
                            ("is_default".into(), Json::Bool(c.is_default)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// One latency-panel component: the quantile ticks (exact integers in the
/// executor-native unit) plus the same quantiles in seconds.
fn service_histogram_to_json(hist: &pim_service::ServiceHistogram, ticks_per_second: f64) -> Json {
    let secs = |ticks: u64| Json::Num(hist.seconds(ticks, ticks_per_second));
    Json::Obj(vec![
        ("count".into(), Json::u64(hist.count())),
        ("p50".into(), Json::u64(hist.quantile(0.50))),
        ("p95".into(), Json::u64(hist.quantile(0.95))),
        ("p99".into(), Json::u64(hist.quantile(0.99))),
        ("max".into(), Json::u64(hist.hist.max())),
        ("mean".into(), Json::Num(hist.hist.mean())),
        ("p50_seconds".into(), secs(hist.quantile(0.50))),
        ("p95_seconds".into(), secs(hist.quantile(0.95))),
        ("p99_seconds".into(), secs(hist.quantile(0.99))),
        ("max_seconds".into(), secs(hist.hist.max())),
    ])
}

fn latency_panel_to_json(panel: &pim_service::LatencyPanel, ticks_per_second: f64) -> Json {
    Json::Obj(vec![
        ("queueing".into(), service_histogram_to_json(&panel.queueing, ticks_per_second)),
        ("service".into(), service_histogram_to_json(&panel.service, ticks_per_second)),
        ("sojourn".into(), service_histogram_to_json(&panel.sojourn, ticks_per_second)),
    ])
}

fn service_spread_to_json(spread: Option<&ServiceSpread>) -> Json {
    spread.map_or(Json::Null, |s| {
        Json::Obj(vec![
            ("runs".into(), Json::u64(s.runs as u64)),
            ("mean_p99_sojourn_seconds".into(), Json::Num(s.mean_p99_sojourn_seconds)),
            ("ci95_p99_sojourn_seconds".into(), Json::Num(s.ci95_p99_sojourn_seconds)),
            ("mean_achieved_rate".into(), Json::Num(s.mean_achieved_rate)),
            ("ci95_achieved_rate".into(), Json::Num(s.ci95_achieved_rate)),
        ])
    })
}

/// Serialises a `--service` sweep (see the [module documentation](self)
/// for the schema).
pub fn service_to_json(sweep: &ServiceSweep) -> Json {
    let o = &sweep.options;
    Json::Obj(vec![
        ("mode".into(), Json::str("service")),
        ("arrival".into(), Json::str(o.arrival.clone())),
        ("mix".into(), Json::str(format!("{}:{}:{}", o.mix.get, o.mix.put, o.mix.transfer))),
        ("dist".into(), Json::str(o.dist.to_string())),
        ("stm".into(), Json::str(o.kind.name())),
        ("tier".into(), Json::str(o.placement.name())),
        ("tasklets".into(), Json::u64(o.tasklets as u64)),
        ("scale".into(), Json::Num(o.scale)),
        ("seed".into(), Json::u64(o.seed)),
        ("repeat".into(), Json::u64(o.repeat as u64)),
        ("requests".into(), Json::u64(o.requests())),
        ("rates".into(), Json::Arr(o.effective_rates().iter().map(|&r| Json::Num(r)).collect())),
        (
            "fleet".into(),
            sweep.fleet.as_ref().map_or(Json::Null, |f| {
                Json::Obj(vec![
                    ("shards".into(), Json::u64(u64::from(f.shards))),
                    ("rebalance".into(), Json::str(f.rebalance.to_string())),
                    ("overlap".into(), Json::Bool(f.overlap)),
                ])
            }),
        ),
        (
            "points".into(),
            Json::Arr(
                sweep
                    .points
                    .iter()
                    .map(|p| {
                        let r = &p.report;
                        Json::Obj(vec![
                            ("executor".into(), Json::str(p.executor.name())),
                            ("arrival".into(), Json::str(r.arrival.to_string())),
                            ("time_unit".into(), Json::str(r.panel.time_domain().unit())),
                            ("offered_rate".into(), Json::Num(r.offered_rate())),
                            ("achieved_rate".into(), Json::Num(r.achieved_rate())),
                            ("completed".into(), Json::u64(r.completed)),
                            ("commits".into(), Json::u64(r.commits)),
                            ("aborts".into(), Json::u64(r.aborts)),
                            ("abort_rate".into(), Json::Num(r.abort_rate())),
                            ("makespan_seconds".into(), Json::Num(r.makespan_seconds)),
                            ("ticks_per_second".into(), Json::Num(r.ticks_per_second)),
                            ("latency".into(), latency_panel_to_json(&r.panel, r.ticks_per_second)),
                            ("repeat_spread".into(), service_spread_to_json(p.spread.as_ref())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "fleet_points".into(),
            Json::Arr(
                sweep
                    .fleet_points
                    .iter()
                    .map(|p| {
                        let r = &p.report;
                        Json::Obj(vec![
                            ("shards".into(), Json::u64(u64::from(r.shards))),
                            ("arrival".into(), Json::str(r.arrival.to_string())),
                            ("time_unit".into(), Json::str(r.panel.time_domain().unit())),
                            ("offered_rate".into(), Json::Num(r.offered_rate())),
                            ("achieved_rate".into(), Json::Num(r.achieved_rate())),
                            ("completed".into(), Json::u64(r.completed)),
                            ("commits".into(), Json::u64(r.commits)),
                            ("aborts".into(), Json::u64(r.aborts)),
                            ("abort_rate".into(), Json::Num(r.abort_rate())),
                            ("rounds".into(), Json::u64(r.rounds)),
                            ("rebalances".into(), Json::u64(r.rebalances)),
                            ("migrated_keys".into(), Json::u64(r.migrated_keys)),
                            ("makespan_seconds".into(), Json::Num(r.makespan_seconds)),
                            ("dpu_seconds".into(), Json::Num(r.dpu_seconds)),
                            ("host_seconds".into(), Json::Num(r.host_seconds)),
                            ("hidden_seconds".into(), Json::Num(r.hidden_seconds)),
                            (
                                "per_shard_completed".into(),
                                Json::Arr(
                                    r.per_shard_completed.iter().map(|&c| Json::u64(c)).collect(),
                                ),
                            ),
                            ("ticks_per_second".into(), Json::Num(r.ticks_per_second)),
                            ("latency".into(), latency_panel_to_json(&r.panel, r.ticks_per_second)),
                            ("repeat_spread".into(), service_spread_to_json(p.spread.as_ref())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_roundtrip_through_the_parser() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("Tiny \"ETLWB\"\n")),
            ("count".into(), Json::u64(42)),
            ("rate".into(), Json::Num(0.125)),
            ("nan".into(), Json::Num(f64::NAN)),
            ("flags".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_string();
        let parsed = parse(&text).expect("writer output must parse");
        assert_eq!(parsed.get("count"), Some(&Json::Num(42.0)));
        assert_eq!(parsed.get("rate"), Some(&Json::Num(0.125)));
        // Non-finite numbers are emitted as null.
        assert_eq!(parsed.get("nan"), Some(&Json::Null));
        assert_eq!(parsed.get("name"), Some(&Json::Str("Tiny \"ETLWB\"\n".into())));
    }

    #[test]
    fn u64_values_are_emitted_exactly() {
        // 2^53 + 1 is the first integer an f64 cannot represent; a seed
        // dumped through a float would come back as its rounded neighbour.
        let big = (1u64 << 53) + 1;
        assert_eq!(Json::u64(big).to_string(), "9007199254740993");
        assert_eq!(Json::u64(u64::MAX).to_string(), u64::MAX.to_string());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "[1] trailing", "nul", "\"open"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn sweep_dumps_parse_and_carry_the_efficiency_metrics() {
        use pim_stm::{MetadataPlacement, StmKind};
        use pim_workloads::Workload;
        let sweep = DesignSpaceSweep::run_kinds(
            Workload::ArrayB,
            MetadataPlacement::Mram,
            &[StmKind::Norec],
            &[2],
            0.05,
            9,
        );
        let json = sweeps_to_json(std::slice::from_ref(&sweep));
        let parsed = parse(&json.to_string()).expect("sweep dump must parse");
        let Json::Arr(cells) = parsed else { panic!("dump must be an array") };
        assert_eq!(cells.len(), 1);
        let cell = &cells[0];
        assert_eq!(cell.get("workload"), Some(&Json::Str("array-b".into())));
        assert_eq!(cell.get("stm"), Some(&Json::Str("NOrec".into())));
        assert_eq!(cell.get("time_unit"), Some(&Json::Str("cyc".into())));
        assert_eq!(cell.get("seed"), Some(&Json::Num(9.0)));
        assert_eq!(cell.get("record_words"), Some(&Json::Null));
        assert_eq!(cell.get("retry"), Some(&Json::Str("exponential".into())));
        assert_eq!(cell.get("repeat_spread"), Some(&Json::Null), "single runs carry no spread");
        assert!(matches!(cell.get("dma_setups_per_commit"), Some(Json::Num(n)) if *n > 0.0));
        assert!(cell.get("phases").and_then(|p| p.get("Reading")).is_some());
        assert!(cell.get("aborts_by_reason").is_some());
    }

    #[test]
    fn fleet_dumps_parse_and_carry_scaling_skew_and_imbalance() {
        use crate::fleet::{FleetSweep, FleetSweepOptions};
        let sweep = FleetSweep::run(
            &[2, 4],
            FleetSweepOptions { scale: 0.05, thetas: vec![0.0, 1.2], ..Default::default() },
        );
        let json = fleet_to_json(&sweep);
        let parsed = parse(&json.to_string()).expect("fleet dump must parse");
        assert_eq!(parsed.get("mode"), Some(&Json::Str("fleet".into())));
        assert_eq!(parsed.get("routing"), Some(&Json::Str("route-to-owner".into())));
        let Some(Json::Arr(scaling)) = parsed.get("scaling") else {
            panic!("scaling must be an array")
        };
        assert_eq!(scaling.len(), 2);
        assert_eq!(scaling[0].get("n_dpus"), Some(&Json::Num(2.0)));
        assert!(scaling[0].get("imbalance").and_then(|i| i.get("cv_commits")).is_some());
        assert!(scaling[0].get("profile").and_then(|p| p.get("phases")).is_some());
        assert!(scaling[0]
            .get("transfers")
            .and_then(|t| t.get("broadcast"))
            .and_then(|b| b.get("calls"))
            .is_some());
        assert!(scaling[0].get("analytic_total_seconds").is_some());
        let Some(Json::Arr(skew)) = parsed.get("skew") else { panic!("skew must be an array") };
        assert_eq!(skew.len(), 2);
        assert_eq!(skew[0].get("theta"), Some(&Json::Num(0.0)));
        assert_eq!(skew[1].get("n_dpus"), Some(&Json::Num(4.0)), "skew runs the largest fleet");
        // Defaults: the new panels exist but report the features off.
        assert_eq!(parsed.get("rebalance_policy"), Some(&Json::Str("off".into())));
        assert_eq!(parsed.get("overlap"), Some(&Json::Bool(false)));
        assert_eq!(parsed.get("repeat"), Some(&Json::Num(1.0)));
        assert_eq!(parsed.get("phases"), Some(&Json::Num(1.0)));
        let pipeline = scaling[0].get("pipeline").expect("pipeline block present");
        assert_eq!(pipeline.get("enabled"), Some(&Json::Bool(false)));
        assert_eq!(pipeline.get("hidden_seconds"), Some(&Json::Num(0.0)));
        let rebalance = scaling[0].get("rebalance").expect("rebalance block present");
        assert_eq!(rebalance.get("policy"), Some(&Json::Str("off".into())));
        assert_eq!(rebalance.get("migrated_keys"), Some(&Json::Num(0.0)));
        let Some(Json::Arr(rounds)) = scaling[0].get("rounds_detail") else {
            panic!("rounds_detail must be an array")
        };
        assert!(!rounds.is_empty());
        assert!(matches!(rounds[0].get("tx_per_sec"), Some(Json::Num(n)) if *n > 0.0));
        assert_eq!(scaling[0].get("repeat_spread"), Some(&Json::Null));
        assert_eq!(skew[0].get("baseline_tx_per_sec"), Some(&Json::Null));
        assert_eq!(skew[0].get("recovered_throughput"), Some(&Json::Null));
    }

    #[test]
    fn rebalancing_overlapped_fleet_dumps_carry_their_panels() {
        use crate::fleet::{FleetSweep, FleetSweepOptions};
        use pim_fleet::RebalancePolicy;
        let sweep = FleetSweep::run(
            &[8],
            FleetSweepOptions {
                scale: 0.1,
                thetas: vec![1.2],
                rebalance: RebalancePolicy::Threshold { max_over_mean: 1.25 },
                overlap: true,
                repeat: 2,
                ..Default::default()
            },
        );
        let json = fleet_to_json(&sweep);
        let parsed = parse(&json.to_string()).expect("fleet dump must parse");
        assert_eq!(parsed.get("rebalance_policy"), Some(&Json::Str("threshold:1.25".into())));
        assert_eq!(parsed.get("overlap"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("repeat"), Some(&Json::Num(2.0)));
        // The uniform scaling run overlaps freely (no migration boundaries).
        let Some(Json::Arr(scaling)) = parsed.get("scaling") else {
            panic!("scaling must be an array")
        };
        let uniform = scaling[0].get("pipeline").expect("pipeline block present");
        assert!(
            matches!(uniform.get("hidden_seconds"), Some(Json::Num(n)) if *n > 0.0),
            "overlap must hide some transfer time on the uniform run"
        );
        let Some(Json::Arr(skew)) = parsed.get("skew") else { panic!("skew must be an array") };
        let point = &skew[0];
        let pipeline = point.get("pipeline").expect("pipeline block present");
        assert_eq!(pipeline.get("enabled"), Some(&Json::Bool(true)));
        let rebalance = point.get("rebalance").expect("rebalance block present");
        assert!(
            matches!(rebalance.get("rebalances"), Some(Json::Num(n)) if *n > 0.0),
            "theta 1.2 on 8 DPUs must trigger at least one recut"
        );
        assert!(matches!(rebalance.get("migration_bytes"), Some(Json::Num(n)) if *n > 0.0));
        assert!(matches!(
            point.get("baseline_tx_per_sec"),
            Some(Json::Num(n)) if *n > 0.0
        ));
        assert!(point.get("recovered_throughput").is_some());
        let spread = point.get("repeat_spread").expect("spread key present");
        assert_eq!(spread.get("runs"), Some(&Json::Num(2.0)));
        assert!(matches!(spread.get("mean_tx_per_sec"), Some(Json::Num(n)) if *n > 0.0));
        let Some(Json::Arr(rounds)) = point.get("rounds_detail") else {
            panic!("rounds_detail must be an array")
        };
        let migrated: f64 = rounds
            .iter()
            .map(|r| match r.get("migrated_keys") {
                Some(Json::Num(n)) => *n,
                _ => 0.0,
            })
            .sum();
        assert!(migrated > 0.0, "per-round detail must show where migrations landed");
    }

    #[test]
    fn grid_dumps_parse_and_carry_the_ranked_cells() {
        use crate::grid::{GridOptions, GridSearch};
        use pim_stm::MetadataPlacement;
        use pim_workloads::Workload;
        let search = GridSearch::run(
            Workload::ArrayB,
            MetadataPlacement::Mram,
            GridOptions { scale: 0.02, tasklets: 2, caps: vec![64], ..GridOptions::default() },
        );
        let json = grid_to_json(&search);
        let parsed = parse(&json.to_string()).expect("grid dump must parse");
        assert_eq!(parsed.get("mode"), Some(&Json::Str("grid".into())));
        assert_eq!(parsed.get("workload"), Some(&Json::Str("array-b".into())));
        let Some(Json::Arr(cells)) = parsed.get("cells") else { panic!("cells must be an array") };
        assert_eq!(cells.len(), 108);
        // A cold search misses once per cell and hits nothing.
        let cache = parsed.get("cache").expect("grid dump must carry the cache panel");
        assert_eq!(cache.get("hits"), Some(&Json::Num(0.0)));
        assert_eq!(cache.get("misses"), Some(&Json::Num(108.0)));
        assert_eq!(cache.get("disk_hits"), Some(&Json::Num(0.0)));
        assert_eq!(cells[0].get("rank"), Some(&Json::Num(1.0)));
        assert_eq!(cells[0].get("slowdown_vs_best"), Some(&Json::Num(1.0)));
        assert!(matches!(cells[0].get("throughput_tx_per_sec"), Some(Json::Num(n)) if *n > 0.0));
        assert!(cells.iter().any(|c| c.get("is_default") == Some(&Json::Bool(true))));
        for pair in cells.windows(2) {
            let (Some(Json::Num(a)), Some(Json::Num(b))) =
                (pair[0].get("rank"), pair[1].get("rank"))
            else {
                panic!("numeric ranks")
            };
            assert!(a < b, "cells must dump in rank order");
        }
    }

    #[test]
    fn tuned_fleet_dumps_carry_the_tuning_block() {
        use crate::fleet::{FleetSweep, FleetSweepOptions};
        use pim_stm::TunePolicy;
        let sweep = FleetSweep::run(
            &[4],
            FleetSweepOptions {
                scale: 0.1,
                thetas: vec![],
                tune: TunePolicy::Windowed { window: 8 },
                ..Default::default()
            },
        );
        let json = fleet_to_json(&sweep);
        let parsed = parse(&json.to_string()).expect("fleet dump must parse");
        assert_eq!(parsed.get("tune"), Some(&Json::Str("windowed:8".into())));
        let Some(Json::Arr(scaling)) = parsed.get("scaling") else {
            panic!("scaling must be an array")
        };
        let tuning = scaling[0].get("tuning").expect("tuning block present");
        assert!(matches!(tuning.get("windows"), Some(Json::Num(n)) if *n > 0.0));
        let Some(Json::Arr(shards)) = tuning.get("shards") else {
            panic!("per-shard tuning must be an array")
        };
        assert_eq!(shards.len(), 4);
        assert!(
            shards.iter().any(|s| s.get("knobs").is_some_and(|k| k.get("retry").is_some())),
            "at least one shard must report settled knob values"
        );
        // The per-point profile carries the aggregate counters too.
        let profile = scaling[0].get("profile").expect("profile block present");
        assert!(matches!(profile.get("tune_windows"), Some(Json::Num(n)) if *n > 0.0));
    }

    #[test]
    fn repeated_cells_dump_their_spread() {
        use crate::design_space::SweepOptions;
        use pim_stm::{MetadataPlacement, StmKind};
        use pim_workloads::spec::Executor;
        use pim_workloads::Workload;
        let sweep = DesignSpaceSweep::run_with(
            Workload::ArrayB,
            MetadataPlacement::Mram,
            &[StmKind::Norec],
            &[2],
            SweepOptions {
                executor: Executor::Threaded,
                repeat: 2,
                scale: 0.05,
                ..SweepOptions::default()
            },
        );
        let json = sweeps_to_json(std::slice::from_ref(&sweep));
        let parsed = parse(&json.to_string()).expect("sweep dump must parse");
        let Json::Arr(cells) = parsed else { panic!("dump must be an array") };
        let spread = cells[0].get("repeat_spread").expect("spread key present");
        assert_eq!(spread.get("runs"), Some(&Json::Num(2.0)));
        let min = spread.get("min_total_time").expect("min present");
        let max = spread.get("max_total_time").expect("max present");
        let (Json::Num(min), Json::Num(max)) = (min, max) else { panic!("numeric spread") };
        assert!(min <= max);
    }

    fn tiny_service_options() -> crate::service::ServiceSweepOptions {
        crate::service::ServiceSweepOptions {
            rates: vec![50_000.0],
            tasklets: 4,
            scale: 0.05,
            ..crate::service::ServiceSweepOptions::default()
        }
    }

    #[test]
    fn service_dump_parses_with_ordered_quantiles() {
        let sweep = ServiceSweep::run(tiny_service_options(), None).unwrap();
        let parsed = parse(&service_to_json(&sweep).to_string()).expect("dump must parse");
        assert_eq!(parsed.get("mode"), Some(&Json::str("service")));
        let Some(Json::Arr(points)) = parsed.get("points") else { panic!("points array") };
        assert_eq!(points.len(), 1);
        let latency = points[0].get("latency").expect("latency block");
        for component in ["queueing", "service", "sojourn"] {
            let hist = latency.get(component).expect("panel component");
            let quantile = |key: &str| match hist.get(key) {
                Some(&Json::Num(n)) => n,
                other => panic!("{component}.{key} must be numeric, got {other:?}"),
            };
            assert!(quantile("p50") <= quantile("p95"));
            assert!(quantile("p95") <= quantile("p99"));
            assert!(quantile("p99_seconds") >= quantile("p50_seconds"));
        }
        assert_eq!(points[0].get("repeat_spread"), Some(&Json::Null));
    }

    #[test]
    fn service_dump_is_bit_identical_under_one_seed() {
        // The simulator is deterministic under a seed, so the whole latency
        // JSON — every histogram bucket included — must be reproducible
        // byte for byte.
        let first =
            service_to_json(&ServiceSweep::run(tiny_service_options(), None).unwrap()).to_string();
        let second =
            service_to_json(&ServiceSweep::run(tiny_service_options(), None).unwrap()).to_string();
        assert_eq!(first, second, "same seed must reproduce the exact latency dump");
        let other_seed = crate::service::ServiceSweepOptions { seed: 43, ..tiny_service_options() };
        let third = service_to_json(&ServiceSweep::run(other_seed, None).unwrap()).to_string();
        assert_ne!(first, third, "a different seed must shuffle arrivals and payloads");
    }

    #[test]
    fn service_fleet_dump_carries_the_shard_block() {
        use pim_fleet::RebalancePolicy;
        let knobs = crate::service::ServiceFleetKnobs {
            shards: 4,
            rebalance: RebalancePolicy::Off,
            overlap: false,
        };
        let sweep = ServiceSweep::run(tiny_service_options(), Some(knobs)).unwrap();
        let parsed = parse(&service_to_json(&sweep).to_string()).expect("dump must parse");
        let fleet = parsed.get("fleet").expect("fleet block");
        assert_eq!(fleet.get("shards"), Some(&Json::Num(4.0)));
        let Some(Json::Arr(points)) = parsed.get("fleet_points") else { panic!("fleet points") };
        assert_eq!(points.len(), 1);
        let Some(Json::Arr(per_shard)) = points[0].get("per_shard_completed") else {
            panic!("per-shard array")
        };
        assert_eq!(per_shard.len(), 4);
    }
}
