//! Labyrinth: the STAMP circuit-routing benchmark (Lee's algorithm) ported
//! to PIM-STM (§4.1).
//!
//! A shared 3-D grid lives in MRAM. Tasklets pull routing jobs
//! (source/destination cell pairs) from a shared work queue — a very short
//! transaction — and then run one long transaction per job: copy the grid
//! into a private MRAM buffer (plain DMA, no STM instrumentation, exactly as
//! STAMP does), run a breadth-first Lee expansion plus backtrack on the
//! private copy, and finally *claim* the chosen path by transactionally
//! re-checking and writing every cell on it. If a cell turned out to be taken
//! by a concurrently committed path, the transaction restarts with a fresh
//! copy of the grid.
//!
//! The paper uses three grid sizes (S = 16×16×3, M = 32×32×3,
//! L = 128×128×3); larger grids mean longer, more memory-bound transactions,
//! which is what saturates the DPU pipeline below 11 tasklets in Fig. 5.
//!
//! Both transactions live in [`TxOps`]-generic bodies ([`PopTxBody`],
//! [`RouteTxBody`]) driven by both executors (see [`crate::driver`]). The
//! grid snapshot and the Lee expansion use the facade's *raw* (plain-DMA)
//! operations — sound because every consumed cell is transactionally
//! re-validated during the claim — and the application-level restart on a
//! taken cell goes through [`TxOps::cancel`].

use pim_sim::{Addr, Dpu, SimRng, StepStatus, TaskletCtx, TaskletProgram, Tier};
use pim_stm::shared::MetadataAllocator;
use pim_stm::threaded::{ThreadedDpu, ThreadedRunReport};
use pim_stm::var::{self, TArray, TVar, WordAccess};
use pim_stm::{algorithm_for, Abort, RunError, StmShared, TxOps};

use crate::driver::{run_tx_body, BodyStep, SimTxRunner, TxBody, TxMachine, TxStatus};

/// Cell states in the shared grid.
const FREE: u64 = 0;
const OCCUPIED: u64 = 1;
/// First wavefront value used by the Lee expansion on the private grid.
const WAVE_BASE: u64 = 2;

/// Parameters of a Labyrinth run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabyrinthConfig {
    /// Grid width (cells).
    pub width: u32,
    /// Grid height (cells).
    pub height: u32,
    /// Grid depth (layers).
    pub depth: u32,
    /// Number of paths to route (shared by all tasklets through the work
    /// queue).
    pub paths: u32,
}

impl LabyrinthConfig {
    /// Workload S of the paper: 16×16×3, 100 paths.
    pub fn small() -> Self {
        LabyrinthConfig { width: 16, height: 16, depth: 3, paths: 100 }
    }

    /// Workload M of the paper: 32×32×3, 100 paths.
    pub fn medium() -> Self {
        LabyrinthConfig { width: 32, height: 32, depth: 3, ..Self::small() }
    }

    /// Workload L of the paper: 128×128×3, 100 paths.
    pub fn large() -> Self {
        LabyrinthConfig { width: 128, height: 128, depth: 3, ..Self::small() }
    }

    /// Scales the number of paths, keeping at least one per expected tasklet.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.paths = ((self.paths as f64 * factor).round() as u32).max(12);
        self
    }

    /// Total number of grid cells.
    pub fn cells(&self) -> u32 {
        self.width * self.height * self.depth
    }

    /// Upper bound on the number of cells of a routed path, used to size the
    /// transaction logs.
    pub fn max_path_cells(&self) -> u32 {
        // A Lee path is at most a Manhattan walk that detours; four times the
        // grid semi-perimeter is a comfortable bound for these densities.
        (self.width + self.height + self.depth) * 4
    }

    /// A sufficient read-set capacity (path claim plus queue pop).
    pub fn read_set_capacity(&self) -> u32 {
        (self.max_path_cells() + 16).next_power_of_two()
    }

    /// A sufficient write-set capacity.
    pub fn write_set_capacity(&self) -> u32 {
        (self.max_path_cells() + 16).next_power_of_two()
    }

    /// MRAM words of the shared data (grid + queue head + job queue); the
    /// sizing counterpart of [`LabyrinthData::allocate`].
    pub fn shared_data_words(&self) -> u32 {
        self.cells() + 1 + 2 * self.paths
    }

    /// MRAM words including the `cells()`-word private grid copy each of
    /// the `tasklets` tasklets owns.
    pub fn data_words(&self, tasklets: usize) -> u32 {
        self.shared_data_words() + self.cells() * tasklets as u32
    }

    /// The six axis neighbours of `cell`, pushed into `out`.
    fn neighbours(&self, cell: u32, out: &mut Vec<u32>) {
        out.clear();
        let w = self.width;
        let h = self.height;
        let d = self.depth;
        let layer = w * h;
        let z = cell / layer;
        let y = (cell % layer) / w;
        let x = cell % w;
        if x > 0 {
            out.push(cell - 1);
        }
        if x + 1 < w {
            out.push(cell + 1);
        }
        if y > 0 {
            out.push(cell - w);
        }
        if y + 1 < h {
            out.push(cell + w);
        }
        if z > 0 {
            out.push(cell - layer);
        }
        if z + 1 < d {
            out.push(cell + layer);
        }
    }
}

/// Shared Labyrinth state: the grid and the work queue.
#[derive(Debug, Clone, Copy)]
pub struct LabyrinthData {
    /// The shared grid (`cells()` words).
    pub grid: TArray<u64>,
    /// Word holding the index of the next unclaimed job.
    pub queue_head: TVar<u64>,
    /// The job array (`2 × paths` words: source, destination).
    pub queue: TArray<u64>,
    config: LabyrinthConfig,
}

impl LabyrinthData {
    /// Allocates the grid and the work queue on either executor and fills
    /// the queue with `config.paths` random source/destination pairs.
    ///
    /// # Panics
    ///
    /// Panics if MRAM cannot hold the grid and queue.
    pub fn allocate<M: MetadataAllocator + WordAccess>(
        mem: &mut M,
        config: LabyrinthConfig,
        seed: u64,
    ) -> Self {
        let grid: TArray<u64> = var::alloc_array(mem, Tier::Mram, config.cells())
            .expect("shared grid must fit in MRAM");
        let queue_head: TVar<u64> =
            var::alloc_var(mem, Tier::Mram).expect("queue head must fit in MRAM");
        let queue: TArray<u64> = var::alloc_array(mem, Tier::Mram, config.paths * 2)
            .expect("work queue must fit in MRAM");
        let mut rng = SimRng::new(seed);
        for i in 0..config.paths {
            let src = rng.next_range(u64::from(config.cells()));
            let mut dst = rng.next_range(u64::from(config.cells()));
            while dst == src {
                dst = rng.next_range(u64::from(config.cells()));
            }
            var::poke_var(mem, queue.at(2 * i), src);
            var::poke_var(mem, queue.at(2 * i + 1), dst);
        }
        LabyrinthData { grid, queue_head, queue, config }
    }

    /// Typed handle to grid cell `index`.
    pub fn cell(&self, index: u32) -> TVar<u64> {
        self.grid.at(index)
    }

    /// Number of grid cells currently marked as occupied (host-side read).
    pub fn occupied_cells<M: WordAccess + ?Sized>(&self, mem: &M) -> u32 {
        (0..self.config.cells()).filter(|&i| var::peek_var(mem, self.cell(i)) == OCCUPIED).count()
            as u32
    }

    /// Number of jobs already claimed from the queue (host-side read).
    pub fn jobs_claimed<M: WordAccess + ?Sized>(&self, mem: &M) -> u64 {
        var::peek_var(mem, self.queue_head)
    }

    /// Checks that the committed grid holds only free/occupied cells (no
    /// wave values leaked from private copies) and that every job was
    /// claimed exactly once.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate<M: WordAccess + ?Sized>(&self, mem: &M) -> Result<(), String> {
        let claimed = self.jobs_claimed(mem);
        if claimed != u64::from(self.config.paths) {
            return Err(format!(
                "queue head at {claimed}, expected all {} jobs claimed",
                self.config.paths
            ));
        }
        for i in 0..self.config.cells() {
            let v = var::peek_var(mem, self.cell(i));
            if v != FREE && v != OCCUPIED {
                return Err(format!("grid cell {i} holds unexpected value {v}"));
            }
        }
        Ok(())
    }
}

/// The queue-pop transaction: read the head, read the job pair, advance the
/// head. After commit, [`PopTxBody::job`] holds the claimed pair, or `None`
/// when the queue is drained.
#[derive(Debug)]
pub struct PopTxBody {
    data: LabyrinthData,
    head: u64,
    loaded_head: bool,
    job: Option<(u32, u32)>,
}

impl PopTxBody {
    /// Creates the body over the shared queue.
    pub fn new(data: LabyrinthData) -> Self {
        PopTxBody { data, head: 0, loaded_head: false, job: None }
    }

    /// The job claimed by the last committed pop (`None` = queue drained).
    pub fn job(&self) -> Option<(u32, u32)> {
        self.job
    }
}

impl TxBody for PopTxBody {
    fn reset(&mut self) {
        self.loaded_head = false;
        self.job = None;
    }

    fn step<O: TxOps>(&mut self, tx: &mut O) -> Result<BodyStep, Abort> {
        if !self.loaded_head {
            self.head = tx.get(self.data.queue_head)?;
            self.loaded_head = true;
            if self.head >= u64::from(self.data.config.paths) {
                // Drained: commit an (empty, read-only) transaction.
                return Ok(BodyStep::Done);
            }
            return Ok(BodyStep::Continue);
        }
        let index = self.head as u32;
        let src = tx.get(self.data.queue.at(2 * index))?;
        let dst = tx.get(self.data.queue.at(2 * index + 1))?;
        tx.set(self.data.queue_head, self.head + 1)?;
        self.job = Some((src as u32, dst as u32));
        Ok(BodyStep::Done)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RouteStep {
    CopyGrid,
    Route,
    Claim { index: usize },
}

/// The routing transaction: snapshot the shared grid into this tasklet's
/// private MRAM buffer with plain DMA ([`TxOps::raw_copy`]), run the Lee
/// expansion and backtrack on the private copy ([`TxOps::raw_load`] /
/// [`TxOps::raw_store`] — the accesses that make the workload memory-bound),
/// then transactionally claim the path one cell per step.
///
/// A claim step that finds a cell taken by a concurrently *committed* path
/// cancels the attempt ([`TxOps::cancel`]); the retry re-snapshots the grid
/// and re-routes, exactly like STAMP. STM-level conflicts rewind the same
/// way through the normal abort path.
#[derive(Debug)]
pub struct RouteTxBody {
    data: LabyrinthData,
    /// Base of this tasklet's private `cells()`-word MRAM grid copy.
    private_grid: Addr,
    src: u32,
    dst: u32,
    step: RouteStep,
    path: Vec<u32>,
    /// Whether the last committed attempt claimed a path (`false` = no free
    /// path existed in the snapshot and the commit was empty).
    routed: bool,
    /// Scratch for the expansion (kept across steps to avoid realloc).
    frontier: Vec<u32>,
    next_frontier: Vec<u32>,
    scratch: Vec<u32>,
}

impl RouteTxBody {
    /// Creates the body; `private_grid` must be a `cells()`-word MRAM region
    /// owned exclusively by this tasklet.
    pub fn new(data: LabyrinthData, private_grid: Addr) -> Self {
        RouteTxBody {
            data,
            private_grid,
            src: 0,
            dst: 0,
            step: RouteStep::CopyGrid,
            path: Vec::new(),
            routed: false,
            frontier: Vec::new(),
            next_frontier: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Installs the next job.
    pub fn prepare(&mut self, src: u32, dst: u32) {
        self.src = src;
        self.dst = dst;
    }

    /// Whether the last committed attempt claimed a path.
    pub fn routed(&self) -> bool {
        self.routed
    }

    fn private_cell(&self, index: u32) -> Addr {
        self.private_grid.offset(index)
    }

    /// Lee expansion + backtrack on the private grid, through the raw
    /// (uninstrumented, but cycle-charged) facade ops. Returns the path
    /// (including both endpoints) or `None` if the destination is
    /// unreachable in the snapshot.
    fn route<O: TxOps>(&mut self, tx: &mut O) -> Option<Vec<u32>> {
        let config = self.data.config;
        let src = self.src;
        let dst = self.dst;
        if tx.raw_load(self.private_cell(src)) != FREE
            || tx.raw_load(self.private_cell(dst)) != FREE
        {
            return None;
        }
        tx.raw_store(self.private_cell(src), WAVE_BASE);
        self.frontier.clear();
        self.frontier.push(src);
        self.next_frontier.clear();
        let mut wave = WAVE_BASE;
        let mut found = src == dst;
        'expansion: while !self.frontier.is_empty() && !found {
            self.next_frontier.clear();
            for f in 0..self.frontier.len() {
                let cell = self.frontier[f];
                config.neighbours(cell, &mut self.scratch);
                let neighbours = self.scratch.clone();
                for n in neighbours {
                    tx.compute(4);
                    if n == dst {
                        tx.raw_store(self.private_cell(n), wave + 1);
                        found = true;
                        break 'expansion;
                    }
                    if tx.raw_load(self.private_cell(n)) == FREE {
                        tx.raw_store(self.private_cell(n), wave + 1);
                        self.next_frontier.push(n);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next_frontier);
            wave += 1;
        }
        if !found {
            return None;
        }
        // Backtrack from the destination following decreasing wave values.
        let mut path = vec![dst];
        let mut cur = dst;
        let mut value = tx.raw_load(self.private_cell(dst));
        while cur != src {
            config.neighbours(cur, &mut self.scratch);
            let neighbours = self.scratch.clone();
            let mut stepped = false;
            for n in neighbours {
                tx.compute(2);
                if tx.raw_load(self.private_cell(n)) == value - 1 {
                    cur = n;
                    value -= 1;
                    path.push(n);
                    stepped = true;
                    break;
                }
            }
            assert!(stepped, "Lee backtrack lost the wavefront (corrupted private grid)");
        }
        Some(path)
    }
}

impl TxBody for RouteTxBody {
    fn reset(&mut self) {
        self.step = RouteStep::CopyGrid;
        self.path.clear();
        self.routed = false;
    }

    fn step<O: TxOps>(&mut self, tx: &mut O) -> Result<BodyStep, Abort> {
        match self.step {
            RouteStep::CopyGrid => {
                // Snapshot the shared grid into the private buffer with plain
                // DMA (no STM instrumentation), exactly like STAMP; the claim
                // phase re-validates every consumed cell transactionally.
                tx.raw_copy(self.data.grid.addr(), self.private_grid, self.data.config.cells());
                self.step = RouteStep::Route;
                Ok(BodyStep::Continue)
            }
            RouteStep::Route => match self.route(tx) {
                Some(path) => {
                    self.path = path;
                    self.step = RouteStep::Claim { index: 0 };
                    Ok(BodyStep::Continue)
                }
                None => {
                    // No free path exists in the snapshot: give up on this
                    // job (the transaction is empty, so commit is trivial).
                    self.path.clear();
                    Ok(BodyStep::Done)
                }
            },
            RouteStep::Claim { index } => {
                if index >= self.path.len() {
                    self.routed = true;
                    return Ok(BodyStep::Done);
                }
                let cell = self.data.cell(self.path[index]);
                let value = tx.get(cell)?;
                if value != FREE {
                    // A concurrently committed path grabbed this cell:
                    // application-level restart with a fresh grid copy.
                    return Err(tx.cancel());
                }
                tx.set(cell, OCCUPIED)?;
                self.step = RouteStep::Claim { index: index + 1 };
                Ok(BodyStep::Continue)
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProgramState {
    Popping,
    Routing,
    Finished,
}

/// One simulated tasklet of the Labyrinth benchmark.
pub struct LabyrinthProgram {
    runner: SimTxRunner,
    pop: PopTxBody,
    route: RouteTxBody,
    state: ProgramState,
    routed: u64,
    route_failures: u64,
}

impl LabyrinthProgram {
    /// Creates one tasklet program; `private_grid` must be a `cells()`-word
    /// MRAM region owned exclusively by this tasklet.
    pub fn new(tm: TxMachine, data: LabyrinthData, private_grid: Addr) -> Self {
        LabyrinthProgram {
            runner: SimTxRunner::new(tm),
            pop: PopTxBody::new(data),
            route: RouteTxBody::new(data, private_grid),
            state: ProgramState::Popping,
            routed: 0,
            route_failures: 0,
        }
    }

    /// Paths successfully routed and committed by this tasklet.
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Jobs for which no free path existed when this tasklet attempted them.
    pub fn route_failures(&self) -> u64 {
        self.route_failures
    }
}

impl TaskletProgram for LabyrinthProgram {
    fn step(&mut self, ctx: &mut TaskletCtx<'_>) -> StepStatus {
        match self.state {
            ProgramState::Finished => StepStatus::Finished,
            ProgramState::Popping => {
                if self.runner.step(ctx, &mut self.pop) == TxStatus::Committed {
                    match self.pop.job() {
                        Some((src, dst)) => {
                            self.route.prepare(src, dst);
                            self.state = ProgramState::Routing;
                        }
                        None => {
                            self.state = ProgramState::Finished;
                            return StepStatus::Finished;
                        }
                    }
                }
                StepStatus::Running
            }
            ProgramState::Routing => {
                if self.runner.step(ctx, &mut self.route) == TxStatus::Committed {
                    if self.route.routed() {
                        self.routed += 1;
                    } else {
                        self.route_failures += 1;
                    }
                    self.state = ProgramState::Popping;
                }
                StepStatus::Running
            }
        }
    }

    fn label(&self) -> &str {
        "labyrinth"
    }
}

/// Builds the per-tasklet programs for one Labyrinth run.
pub fn build(
    dpu: &mut Dpu,
    shared: &StmShared,
    config: LabyrinthConfig,
    tasklets: usize,
    seed: u64,
) -> (LabyrinthData, Vec<Box<dyn TaskletProgram>>) {
    let data = LabyrinthData::allocate(dpu, config, seed);
    let alg = algorithm_for(shared.config().kind);
    let programs = (0..tasklets)
        .map(|t| {
            let slot = shared
                .register_tasklet(dpu, t)
                .expect("per-tasklet STM logs must fit in the metadata tier");
            let private_grid = dpu
                .alloc(Tier::Mram, config.cells())
                .expect("private grid copies must fit in MRAM");
            let tm = TxMachine::new(shared.clone(), slot, alg);
            Box::new(LabyrinthProgram::new(tm, data, private_grid)) as Box<dyn TaskletProgram>
        })
        .collect();
    (data, programs)
}

/// Runs the same workload — the same [`PopTxBody`] and [`RouteTxBody`] — on
/// the threaded executor.
///
/// # Errors
///
/// Returns [`RunError`] if the tasklet count exceeds the hardware limit or
/// the per-tasklet transaction logs / private grids do not fit.
pub fn run_threaded(
    dpu: &mut ThreadedDpu,
    config: LabyrinthConfig,
    tasklets: usize,
    seed: u64,
) -> Result<(LabyrinthData, ThreadedRunReport), RunError> {
    let data = LabyrinthData::allocate(dpu, config, seed);
    let private_grids: Vec<Addr> =
        (0..tasklets).map(|_| dpu.alloc(Tier::Mram, config.cells())).collect::<Result<_, _>>()?;
    let report = dpu.run(tasklets, |mut tasklet| {
        let mut pop = PopTxBody::new(data);
        let mut route = RouteTxBody::new(data, private_grids[tasklet.tasklet_id()]);
        loop {
            run_tx_body(&mut tasklet, &mut pop);
            let Some((src, dst)) = pop.job() else { break };
            route.prepare(src, dst);
            run_tx_body(&mut tasklet, &mut route);
        }
    })?;
    Ok((data, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{DpuConfig, Scheduler};
    use pim_stm::{MetadataPlacement, StmConfig, StmKind};

    fn run_labyrinth(
        kind: StmKind,
        config: LabyrinthConfig,
        tasklets: usize,
    ) -> (LabyrinthData, Dpu, pim_sim::DpuRunReport) {
        let mut dpu = Dpu::new(DpuConfig::default());
        let stm_cfg = StmConfig::new(kind, MetadataPlacement::Mram)
            .with_read_set_capacity(config.read_set_capacity())
            .with_write_set_capacity(config.write_set_capacity());
        let shared = StmShared::allocate(&mut dpu, stm_cfg).unwrap();
        let (data, programs) = build(&mut dpu, &shared, config, tasklets, 11);
        let report = Scheduler::new().run(&mut dpu, programs);
        (data, dpu, report)
    }

    #[test]
    fn paper_grid_sizes() {
        assert_eq!(LabyrinthConfig::small().cells(), 16 * 16 * 3);
        assert_eq!(LabyrinthConfig::medium().cells(), 32 * 32 * 3);
        assert_eq!(LabyrinthConfig::large().cells(), 128 * 128 * 3);
        assert_eq!(LabyrinthConfig::small().paths, 100);
    }

    #[test]
    fn every_job_is_claimed_exactly_once() {
        let config = LabyrinthConfig::small().scaled(0.3);
        for kind in [StmKind::Norec, StmKind::TinyEtlWb, StmKind::VrEtlWt] {
            let (data, dpu, _report) = run_labyrinth(kind, config, 4);
            assert_eq!(data.jobs_claimed(&dpu), u64::from(config.paths), "{kind}");
        }
    }

    #[test]
    fn routed_paths_leave_occupied_cells_and_commits() {
        let config = LabyrinthConfig::small().scaled(0.2);
        let (data, dpu, report) = run_labyrinth(StmKind::Norec, config, 2);
        // Every routed path occupies at least two cells (its endpoints).
        assert!(data.occupied_cells(&dpu) >= 2, "at least one path must route on an empty grid");
        // One pop transaction per job plus one final empty pop per tasklet,
        // plus one routing transaction per job.
        assert!(report.total_commits() >= u64::from(config.paths));
    }

    #[test]
    fn paths_never_overlap() {
        // Claimed cells are written exactly once: if two committed paths
        // overlapped, the second claim would have observed OCCUPIED and
        // cancelled. After the run the grid may only contain FREE/OCCUPIED
        // values (no wave values leaked from private copies).
        let config = LabyrinthConfig::small().scaled(0.2);
        let (data, dpu, _) = run_labyrinth(StmKind::TinyEtlWt, config, 6);
        for i in 0..config.cells() {
            let v = var::peek_var(&dpu, data.cell(i));
            assert!(v == FREE || v == OCCUPIED, "cell {i} holds unexpected value {v}");
        }
    }

    #[test]
    fn concurrent_routing_generates_application_level_restarts() {
        let config = LabyrinthConfig { width: 8, height: 8, depth: 1, paths: 30 };
        let (_, _, report) = run_labyrinth(StmKind::TinyEtlWb, config, 6);
        // On a tiny single-layer grid concurrent paths inevitably collide, so
        // some aborts (STM- or application-level) must have happened.
        assert!(report.total_aborts() > 0, "expected contention on an 8x8x1 grid");
    }

    #[test]
    fn the_same_bodies_route_on_the_threaded_executor() {
        let config = LabyrinthConfig::small().scaled(0.2);
        for kind in [StmKind::Norec, StmKind::TinyEtlWb] {
            let stm_cfg = StmConfig::new(kind, MetadataPlacement::Mram)
                .with_read_set_capacity(config.read_set_capacity())
                .with_write_set_capacity(config.write_set_capacity());
            let mut dpu = ThreadedDpu::new(stm_cfg).unwrap();
            let (data, _report) = run_threaded(&mut dpu, config, 4, 11).unwrap();
            assert_eq!(data.jobs_claimed(&dpu), u64::from(config.paths), "{kind}");
            for i in 0..config.cells() {
                let v = var::peek_var(&dpu, data.cell(i));
                assert!(v == FREE || v == OCCUPIED, "{kind}: cell {i} holds {v}");
            }
        }
    }
}
