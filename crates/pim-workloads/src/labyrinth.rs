//! Labyrinth: the STAMP circuit-routing benchmark (Lee's algorithm) ported
//! to PIM-STM (§4.1).
//!
//! A shared 3-D grid lives in MRAM. Tasklets pull routing jobs
//! (source/destination cell pairs) from a shared work queue — a very short
//! transaction — and then run one long transaction per job: copy the grid
//! into a private MRAM buffer (plain DMA, no STM instrumentation, exactly as
//! STAMP does), run a breadth-first Lee expansion plus backtrack on the
//! private copy, and finally *claim* the chosen path by transactionally
//! re-checking and writing every cell on it. If a cell turned out to be taken
//! by a concurrently committed path, the transaction restarts with a fresh
//! copy of the grid.
//!
//! The paper uses three grid sizes (S = 16×16×3, M = 32×32×3,
//! L = 128×128×3); larger grids mean longer, more memory-bound transactions,
//! which is what saturates the DPU pipeline below 11 tasklets in Fig. 5.

use pim_sim::{Addr, Dpu, SimRng, StepStatus, TaskletCtx, TaskletProgram, Tier};
use pim_stm::{algorithm_for, Phase, StmShared};

use crate::driver::TxMachine;

/// Cell states in the shared grid.
const FREE: u64 = 0;
const OCCUPIED: u64 = 1;
/// First wavefront value used by the Lee expansion on the private grid.
const WAVE_BASE: u64 = 2;

/// Parameters of a Labyrinth run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabyrinthConfig {
    /// Grid width (cells).
    pub width: u32,
    /// Grid height (cells).
    pub height: u32,
    /// Grid depth (layers).
    pub depth: u32,
    /// Number of paths to route (shared by all tasklets through the work
    /// queue).
    pub paths: u32,
}

impl LabyrinthConfig {
    /// Workload S of the paper: 16×16×3, 100 paths.
    pub fn small() -> Self {
        LabyrinthConfig { width: 16, height: 16, depth: 3, paths: 100 }
    }

    /// Workload M of the paper: 32×32×3, 100 paths.
    pub fn medium() -> Self {
        LabyrinthConfig { width: 32, height: 32, depth: 3, ..Self::small() }
    }

    /// Workload L of the paper: 128×128×3, 100 paths.
    pub fn large() -> Self {
        LabyrinthConfig { width: 128, height: 128, depth: 3, ..Self::small() }
    }

    /// Scales the number of paths, keeping at least one per expected tasklet.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.paths = ((self.paths as f64 * factor).round() as u32).max(12);
        self
    }

    /// Total number of grid cells.
    pub fn cells(&self) -> u32 {
        self.width * self.height * self.depth
    }

    /// Upper bound on the number of cells of a routed path, used to size the
    /// transaction logs.
    pub fn max_path_cells(&self) -> u32 {
        // A Lee path is at most a Manhattan walk that detours; four times the
        // grid semi-perimeter is a comfortable bound for these densities.
        (self.width + self.height + self.depth) * 4
    }

    /// A sufficient read-set capacity (path claim plus queue pop).
    pub fn read_set_capacity(&self) -> u32 {
        (self.max_path_cells() + 16).next_power_of_two()
    }

    /// A sufficient write-set capacity.
    pub fn write_set_capacity(&self) -> u32 {
        (self.max_path_cells() + 16).next_power_of_two()
    }
}

/// Shared Labyrinth state: the grid and the work queue.
#[derive(Debug, Clone, Copy)]
pub struct LabyrinthData {
    /// Base of the shared grid (`cells()` words).
    pub grid: Addr,
    /// Word holding the index of the next unclaimed job.
    pub queue_head: Addr,
    /// Base of the job array (`2 × paths` words: source, destination).
    pub queue: Addr,
    config: LabyrinthConfig,
}

impl LabyrinthData {
    /// Allocates the grid and the work queue and fills the queue with
    /// `config.paths` random source/destination pairs.
    ///
    /// # Panics
    ///
    /// Panics if MRAM cannot hold the grid and queue.
    pub fn allocate(dpu: &mut Dpu, config: LabyrinthConfig, seed: u64) -> Self {
        let grid = dpu.alloc(Tier::Mram, config.cells()).expect("shared grid must fit in MRAM");
        let queue_head = dpu.alloc(Tier::Mram, 1).expect("queue head");
        let queue = dpu.alloc(Tier::Mram, config.paths * 2).expect("work queue must fit in MRAM");
        let mut rng = SimRng::new(seed);
        for i in 0..config.paths {
            let src = rng.next_range(u64::from(config.cells()));
            let mut dst = rng.next_range(u64::from(config.cells()));
            while dst == src {
                dst = rng.next_range(u64::from(config.cells()));
            }
            dpu.poke(queue.offset(2 * i), src);
            dpu.poke(queue.offset(2 * i + 1), dst);
        }
        LabyrinthData { grid, queue_head, queue, config }
    }

    /// Address of grid cell `index`.
    pub fn cell_addr(&self, index: u32) -> Addr {
        debug_assert!(index < self.config.cells());
        self.grid.offset(index)
    }

    /// Number of grid cells currently marked as occupied (host-side read).
    pub fn occupied_cells(&self, dpu: &Dpu) -> u32 {
        (0..self.config.cells()).filter(|&i| dpu.peek(self.cell_addr(i)) == OCCUPIED).count() as u32
    }

    /// Number of jobs already claimed from the queue (host-side read).
    pub fn jobs_claimed(&self, dpu: &Dpu) -> u64 {
        dpu.peek(self.queue_head)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    PopBegin,
    PopHead,
    PopEntry { head: u64 },
    PopCommit { done: bool },
    RouteBegin,
    CopyGrid,
    Route,
    Claim { index: usize },
    RouteCommit,
    Finished,
}

/// One tasklet of the Labyrinth benchmark.
pub struct LabyrinthProgram {
    tm: TxMachine,
    data: LabyrinthData,
    config: LabyrinthConfig,
    /// Private copy of the grid used by the Lee expansion.
    private_grid: Addr,
    state: State,
    src: u32,
    dst: u32,
    path: Vec<u32>,
    routed: u64,
    route_failures: u64,
}

impl LabyrinthProgram {
    /// Creates one tasklet program; `private_grid` must be a `cells()`-word
    /// MRAM region owned exclusively by this tasklet.
    pub fn new(tm: TxMachine, data: LabyrinthData, private_grid: Addr) -> Self {
        let config = data.config;
        LabyrinthProgram {
            tm,
            data,
            config,
            private_grid,
            state: State::PopBegin,
            src: 0,
            dst: 0,
            path: Vec::new(),
            routed: 0,
            route_failures: 0,
        }
    }

    /// Paths successfully routed and committed by this tasklet.
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Jobs for which no free path existed when this tasklet attempted them.
    pub fn route_failures(&self) -> u64 {
        self.route_failures
    }

    fn neighbours(&self, cell: u32, out: &mut Vec<u32>) {
        out.clear();
        let w = self.config.width;
        let h = self.config.height;
        let d = self.config.depth;
        let layer = w * h;
        let z = cell / layer;
        let y = (cell % layer) / w;
        let x = cell % w;
        if x > 0 {
            out.push(cell - 1);
        }
        if x + 1 < w {
            out.push(cell + 1);
        }
        if y > 0 {
            out.push(cell - w);
        }
        if y + 1 < h {
            out.push(cell + w);
        }
        if z > 0 {
            out.push(cell - layer);
        }
        if z + 1 < d {
            out.push(cell + layer);
        }
    }

    fn private_cell(&self, index: u32) -> Addr {
        self.private_grid.offset(index)
    }

    /// Lee expansion + backtrack on the private grid. Charges every cell
    /// visit to the context (the grid is in MRAM, which is what makes this
    /// workload memory bound). Returns the path (including both endpoints) or
    /// `None` if the destination is unreachable.
    fn route(&mut self, ctx: &mut TaskletCtx<'_>) -> Option<Vec<u32>> {
        ctx.set_phase(Phase::OtherExec);
        let src = self.src;
        let dst = self.dst;
        if ctx.load(self.private_cell(src)) != FREE || ctx.load(self.private_cell(dst)) != FREE {
            return None;
        }
        ctx.store(self.private_cell(src), WAVE_BASE);
        let mut frontier = vec![src];
        let mut next = Vec::new();
        let mut scratch = Vec::new();
        let mut wave = WAVE_BASE;
        let mut found = src == dst;
        'expansion: while !frontier.is_empty() && !found {
            next.clear();
            for &cell in &frontier {
                self.neighbours(cell, &mut scratch);
                let neighbours = scratch.clone();
                for n in neighbours {
                    ctx.compute(4);
                    if n == dst {
                        ctx.store(self.private_cell(n), wave + 1);
                        found = true;
                        break 'expansion;
                    }
                    if ctx.load(self.private_cell(n)) == FREE {
                        ctx.store(self.private_cell(n), wave + 1);
                        next.push(n);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            wave += 1;
        }
        if !found {
            return None;
        }
        // Backtrack from the destination following decreasing wave values.
        let mut path = vec![dst];
        let mut cur = dst;
        let mut value = ctx.load(self.private_cell(dst));
        while cur != src {
            self.neighbours(cur, &mut scratch);
            let neighbours = scratch.clone();
            let mut stepped = false;
            for n in neighbours {
                ctx.compute(2);
                if ctx.load(self.private_cell(n)) == value - 1 {
                    cur = n;
                    value -= 1;
                    path.push(n);
                    stepped = true;
                    break;
                }
            }
            assert!(stepped, "Lee backtrack lost the wavefront (corrupted private grid)");
        }
        Some(path)
    }

    fn restart_route(&mut self, ctx: &mut TaskletCtx<'_>) {
        self.tm.on_abort(ctx);
        self.state = State::RouteBegin;
    }
}

impl TaskletProgram for LabyrinthProgram {
    fn step(&mut self, ctx: &mut TaskletCtx<'_>) -> StepStatus {
        match self.state {
            State::Finished => return StepStatus::Finished,
            State::PopBegin => {
                self.tm.begin(ctx);
                self.state = State::PopHead;
            }
            State::PopHead => match self.tm.read(ctx, self.data.queue_head) {
                Ok(head) if head >= u64::from(self.config.paths) => {
                    self.state = State::PopCommit { done: true };
                }
                Ok(head) => self.state = State::PopEntry { head },
                Err(_) => {
                    self.tm.on_abort(ctx);
                    self.state = State::PopBegin;
                }
            },
            State::PopEntry { head } => {
                let result = self
                    .tm
                    .read(ctx, self.data.queue.offset(2 * head as u32))
                    .and_then(|src| {
                        self.tm
                            .read(ctx, self.data.queue.offset(2 * head as u32 + 1))
                            .map(|dst| (src, dst))
                    })
                    .and_then(|(src, dst)| {
                        self.tm.write(ctx, self.data.queue_head, head + 1).map(|()| (src, dst))
                    });
                match result {
                    Ok((src, dst)) => {
                        self.src = src as u32;
                        self.dst = dst as u32;
                        self.state = State::PopCommit { done: false };
                    }
                    Err(_) => {
                        self.tm.on_abort(ctx);
                        self.state = State::PopBegin;
                    }
                }
            }
            State::PopCommit { done } => match self.tm.commit(ctx) {
                Ok(()) => {
                    self.state = if done { State::Finished } else { State::RouteBegin };
                    if done {
                        return StepStatus::Finished;
                    }
                }
                Err(_) => {
                    self.tm.on_abort(ctx);
                    self.state = State::PopBegin;
                }
            },
            State::RouteBegin => {
                self.tm.begin(ctx);
                self.state = State::CopyGrid;
            }
            State::CopyGrid => {
                // Snapshot the shared grid into the private buffer with plain
                // DMA (no STM instrumentation), exactly like STAMP.
                ctx.set_phase(Phase::OtherExec);
                ctx.copy_block(self.data.grid, self.private_grid, self.config.cells());
                self.state = State::Route;
            }
            State::Route => {
                match self.route(ctx) {
                    Some(path) => {
                        self.path = path;
                        self.state = State::Claim { index: 0 };
                    }
                    None => {
                        // No free path exists in the snapshot: give up on this
                        // job (the transaction is empty, so commit is trivial).
                        self.route_failures += 1;
                        self.path.clear();
                        self.state = State::RouteCommit;
                    }
                }
            }
            State::Claim { index } => {
                if index >= self.path.len() {
                    self.state = State::RouteCommit;
                    return StepStatus::Running;
                }
                let cell = self.data.cell_addr(self.path[index]);
                match self.tm.read(ctx, cell) {
                    Ok(value) if value == FREE => match self.tm.write(ctx, cell, OCCUPIED) {
                        Ok(()) => self.state = State::Claim { index: index + 1 },
                        Err(_) => self.restart_route(ctx),
                    },
                    Ok(_) => {
                        // A concurrently committed path grabbed this cell:
                        // application-level restart with a fresh grid copy.
                        self.tm.cancel(ctx);
                        self.restart_route(ctx);
                    }
                    Err(_) => self.restart_route(ctx),
                }
            }
            State::RouteCommit => match self.tm.commit(ctx) {
                Ok(()) => {
                    if !self.path.is_empty() {
                        self.routed += 1;
                    }
                    self.state = State::PopBegin;
                }
                Err(_) => self.restart_route(ctx),
            },
        }
        StepStatus::Running
    }

    fn label(&self) -> &str {
        "labyrinth"
    }
}

/// Builds the per-tasklet programs for one Labyrinth run.
pub fn build(
    dpu: &mut Dpu,
    shared: &StmShared,
    config: LabyrinthConfig,
    tasklets: usize,
    seed: u64,
) -> (LabyrinthData, Vec<Box<dyn TaskletProgram>>) {
    let data = LabyrinthData::allocate(dpu, config, seed);
    let alg = algorithm_for(shared.config().kind);
    let programs = (0..tasklets)
        .map(|t| {
            let slot = shared
                .register_tasklet(dpu, t)
                .expect("per-tasklet STM logs must fit in the metadata tier");
            let private_grid = dpu
                .alloc(Tier::Mram, config.cells())
                .expect("private grid copies must fit in MRAM");
            let tm = TxMachine::new(shared.clone(), slot, alg);
            Box::new(LabyrinthProgram::new(tm, data, private_grid)) as Box<dyn TaskletProgram>
        })
        .collect();
    (data, programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{DpuConfig, Scheduler};
    use pim_stm::{MetadataPlacement, StmConfig, StmKind};

    fn run_labyrinth(
        kind: StmKind,
        config: LabyrinthConfig,
        tasklets: usize,
    ) -> (LabyrinthData, Dpu, pim_sim::DpuRunReport) {
        let mut dpu = Dpu::new(DpuConfig::default());
        let stm_cfg = StmConfig::new(kind, MetadataPlacement::Mram)
            .with_read_set_capacity(config.read_set_capacity())
            .with_write_set_capacity(config.write_set_capacity());
        let shared = StmShared::allocate(&mut dpu, stm_cfg).unwrap();
        let (data, programs) = build(&mut dpu, &shared, config, tasklets, 11);
        let report = Scheduler::new().run(&mut dpu, programs);
        (data, dpu, report)
    }

    #[test]
    fn paper_grid_sizes() {
        assert_eq!(LabyrinthConfig::small().cells(), 16 * 16 * 3);
        assert_eq!(LabyrinthConfig::medium().cells(), 32 * 32 * 3);
        assert_eq!(LabyrinthConfig::large().cells(), 128 * 128 * 3);
        assert_eq!(LabyrinthConfig::small().paths, 100);
    }

    #[test]
    fn every_job_is_claimed_exactly_once() {
        let config = LabyrinthConfig::small().scaled(0.3);
        for kind in [StmKind::Norec, StmKind::TinyEtlWb, StmKind::VrEtlWt] {
            let (data, dpu, _report) = run_labyrinth(kind, config, 4);
            assert_eq!(data.jobs_claimed(&dpu), u64::from(config.paths), "{kind}");
        }
    }

    #[test]
    fn routed_paths_leave_occupied_cells_and_commits() {
        let config = LabyrinthConfig::small().scaled(0.2);
        let (data, dpu, report) = run_labyrinth(StmKind::Norec, config, 2);
        // Every routed path occupies at least two cells (its endpoints).
        assert!(data.occupied_cells(&dpu) >= 2, "at least one path must route on an empty grid");
        // One pop transaction per job plus one final empty pop per tasklet,
        // plus one routing transaction per job.
        assert!(report.total_commits() >= u64::from(config.paths));
    }

    #[test]
    fn paths_never_overlap() {
        // Claimed cells are written exactly once: the total number of
        // occupied cells must equal the sum of committed path lengths, which
        // we check indirectly by re-routing on a single tasklet and comparing
        // against a high-contention multi-tasklet run.
        let config = LabyrinthConfig::small().scaled(0.2);
        let (data, dpu, _) = run_labyrinth(StmKind::TinyEtlWt, config, 6);
        // If two committed paths overlapped, a cell would have been written
        // twice and the grid would contain fewer occupied cells than the sum
        // of path lengths; we cannot observe path lengths here, but we can at
        // least assert the grid only contains FREE/OCCUPIED values (no wave
        // values leaked from private copies).
        for i in 0..config.cells() {
            let v = dpu.peek(data.cell_addr(i));
            assert!(v == FREE || v == OCCUPIED, "cell {i} holds unexpected value {v}");
        }
    }

    #[test]
    fn concurrent_routing_generates_application_level_restarts() {
        let config = LabyrinthConfig { width: 8, height: 8, depth: 1, paths: 30 };
        let (_, _, report) = run_labyrinth(StmKind::TinyEtlWb, config, 6);
        // On a tiny single-layer grid concurrent paths inevitably collide, so
        // some aborts (STM- or application-level) must have happened.
        assert!(report.total_aborts() > 0, "expected contention on an 8x8x1 grid");
    }
}
