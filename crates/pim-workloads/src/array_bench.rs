//! ArrayBench: the synthetic micro-benchmark of §4.1.
//!
//! Transactions manipulate a shared array split into a *read region* of `Y`
//! entries and an *update region* of `K` entries:
//!
//! * **Workload A** (`N` = 12 500, `Y` = 2 500, `K` = 10 000): each
//!   transaction reads 100 random entries of the read region and then
//!   reads-and-modifies 20 random entries of the update region. Large read
//!   sets, low contention — the workload where validation-based designs
//!   (NOrec, Tiny) pay the most and visible reads shine.
//! * **Workload B** (`K` = 10): each transaction only performs the second
//!   phase on 4 random entries of a 10-entry region. Tiny transactions,
//!   very high contention — the workload where NOrec's implicit back-off and
//!   low abort cost win.
//!
//! The transaction logic lives in [`ArrayBenchBody`], written once against
//! [`TxOps`] and driven by both executors (see [`crate::driver`]).

use pim_sim::{Dpu, SimRng, StepStatus, TaskletCtx, TaskletProgram, Tier};
use pim_stm::shared::MetadataAllocator;
use pim_stm::threaded::{ThreadedDpu, ThreadedRunReport};
use pim_stm::var::{self, TArray, TVar, WordAccess};
use pim_stm::{algorithm_for, Abort, RunError, StmShared, TxOps};

use crate::driver::{run_tx_body, tasklet_rng, BodyStep, SimTxRunner, TxBody, TxMachine, TxStatus};

/// Parameters of an ArrayBench run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayBenchConfig {
    /// Entries in the read-only region (`Y` in the paper).
    pub read_region: u32,
    /// Entries in the update region (`K` in the paper).
    pub update_region: u32,
    /// Entries read in the first phase of each transaction, in total.
    pub reads_per_tx: u32,
    /// Contiguous entries fetched per read operation: `1` reads individual
    /// random entries (the paper's original access pattern); larger values
    /// group the same `reads_per_tx` entries into `reads_per_tx /
    /// record_words` random contiguous records, which the STM moves through
    /// [`TxOps::read_words`] — one DMA burst per record under
    /// `ReadStrategy::Batched`, exercising the read-side analogue of the
    /// coalesced commit write-back.
    pub record_words: u32,
    /// Random read-modify-writes performed in the second phase, in total.
    pub updates_per_tx: u32,
    /// Contiguous entries written per update operation: `1` updates
    /// individual random entries (the paper's original access pattern);
    /// larger values group the same `updates_per_tx` entries into
    /// contiguous records, read-modify-written through
    /// [`TxOps::read_words`]/[`TxOps::write_words`] — under encounter-time
    /// locking the record write exercises the multi-ORec acquisition path
    /// ([`pim_stm::LockOrder`]).
    pub update_record_words: u32,
    /// Transactions each tasklet executes.
    pub transactions_per_tasklet: u32,
}

impl ArrayBenchConfig {
    /// Workload A of the paper: 100 entries read over 2 500 entries followed
    /// by 20 updates over 10 000 entries. The read phase fetches its 100
    /// entries as five random 20-entry records so the read-dominated cell
    /// exercises record DMA (the per-word STM checks are unchanged).
    pub fn workload_a() -> Self {
        ArrayBenchConfig {
            read_region: 2_500,
            update_region: 10_000,
            reads_per_tx: 100,
            record_words: 20,
            updates_per_tx: 20,
            update_record_words: 1,
            transactions_per_tasklet: 100,
        }
    }

    /// Workload B of the paper: 4 updates over a 10-entry region.
    pub fn workload_b() -> Self {
        ArrayBenchConfig {
            read_region: 0,
            update_region: 10,
            reads_per_tx: 0,
            record_words: 1,
            updates_per_tx: 4,
            update_record_words: 1,
            transactions_per_tasklet: 400,
        }
    }

    /// Number of read operations the first phase issues: `reads_per_tx`
    /// entries grouped into records of `record_words` (the last record is
    /// dropped rather than shortened if the division is not exact).
    pub fn read_records_per_tx(&self) -> u32 {
        self.reads_per_tx / self.record_words.max(1)
    }

    /// Overrides the record grouping of the read phase; `1` restores the
    /// paper's original access pattern of independent single-entry reads
    /// (note the RNG stream also changes: one draw per record, not per
    /// entry).
    pub fn with_record_words(mut self, words: u32) -> Self {
        self.record_words = words;
        self
    }

    /// Number of update operations the second phase issues: `updates_per_tx`
    /// entries grouped into records of `update_record_words` (mirroring
    /// [`ArrayBenchConfig::read_records_per_tx`]).
    pub fn update_records_per_tx(&self) -> u32 {
        self.updates_per_tx / self.update_record_words.max(1)
    }

    /// Entries actually incremented per committed transaction: with record
    /// grouping, `updates_per_tx` rounded down to a whole number of records.
    pub fn updates_applied_per_tx(&self) -> u32 {
        self.update_records_per_tx() * self.update_record_words.max(1)
    }

    /// Overrides the record grouping of the update phase; `1` restores the
    /// paper's original scattered single-entry read-modify-writes (as with
    /// [`ArrayBenchConfig::with_record_words`], the RNG stream changes: one
    /// draw per record).
    pub fn with_update_record_words(mut self, words: u32) -> Self {
        self.update_record_words = words;
        self
    }

    /// Scales the per-tasklet transaction count (used to shorten benchmark
    /// runs); always keeps at least one transaction.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.transactions_per_tasklet =
            ((self.transactions_per_tasklet as f64 * factor).round() as u32).max(1);
        self
    }

    /// Total array size `N = Y + K`.
    pub fn array_words(&self) -> u32 {
        self.read_region + self.update_region
    }

    /// A reasonable read-set capacity for this configuration.
    pub fn read_set_capacity(&self) -> u32 {
        (self.reads_per_tx + self.updates_per_tx + 8).next_power_of_two()
    }

    /// A reasonable write-set capacity for this configuration.
    pub fn write_set_capacity(&self) -> u32 {
        (self.updates_per_tx + 8).next_power_of_two()
    }
}

/// Shared state of the benchmark: the array in MRAM, handled through the
/// typed [`TArray`] facade.
#[derive(Debug, Clone, Copy)]
pub struct ArrayBenchData {
    /// The whole array: the read region (`Y` entries) directly followed by
    /// the update region.
    pub array: TArray<u64>,
    config: ArrayBenchConfig,
}

impl ArrayBenchData {
    /// Allocates the shared array in MRAM on either executor.
    ///
    /// # Panics
    ///
    /// Panics if MRAM cannot hold the array (it always can on a real DPU for
    /// the paper's sizes).
    pub fn allocate<A: MetadataAllocator + ?Sized>(
        alloc: &mut A,
        config: ArrayBenchConfig,
    ) -> Self {
        if config.reads_per_tx > 0 {
            assert!(
                config.record_words >= 1 && config.record_words <= config.read_region,
                "ArrayBench record_words ({}) must lie in 1..=read_region ({}) so every \
                 record fits inside the read region",
                config.record_words,
                config.read_region
            );
            assert!(
                config.record_words <= config.reads_per_tx,
                "ArrayBench record_words ({}) must not exceed reads_per_tx ({}): the read \
                 phase would silently vanish (reads_per_tx / record_words rounds to zero)",
                config.record_words,
                config.reads_per_tx
            );
        }
        if config.updates_per_tx > 0 {
            assert!(
                config.update_record_words >= 1
                    && config.update_record_words <= config.update_region,
                "ArrayBench update_record_words ({}) must lie in 1..=update_region ({}) so \
                 every update record fits inside the update region",
                config.update_record_words,
                config.update_region
            );
            assert!(
                config.update_record_words <= config.updates_per_tx,
                "ArrayBench update_record_words ({}) must not exceed updates_per_tx ({}): \
                 the update phase would silently vanish",
                config.update_record_words,
                config.updates_per_tx
            );
        }
        let array = var::alloc_array(alloc, Tier::Mram, config.array_words())
            .expect("ArrayBench array must fit in MRAM");
        ArrayBenchData { array, config }
    }

    fn read_entry(&self, index: u32) -> TVar<u64> {
        debug_assert!(index < self.config.read_region);
        self.array.at(index)
    }

    /// Address of a `record_words`-entry record starting at `index` in the
    /// read region.
    fn read_record_addr(&self, index: u32) -> pim_sim::Addr {
        debug_assert!(index + self.config.record_words <= self.config.read_region);
        self.array.at(index).addr()
    }

    fn update_entry(&self, index: u32) -> TVar<u64> {
        debug_assert!(index < self.config.update_region);
        self.array.at(self.config.read_region + index)
    }

    /// Address of an `update_record_words`-entry record starting at `index`
    /// in the update region.
    fn update_record_addr(&self, index: u32) -> pim_sim::Addr {
        debug_assert!(index + self.config.update_record_words <= self.config.update_region);
        self.update_entry(index).addr()
    }

    /// Sum of the update region, read directly (host-side); used by tests to
    /// check that committed increments are not lost.
    pub fn update_region_sum<M: WordAccess + ?Sized>(&self, mem: &M) -> u64 {
        (0..self.config.update_region).map(|i| var::peek_var(mem, self.update_entry(i))).sum()
    }
}

/// One ArrayBench transaction: the read phase followed by the update phase,
/// one read operation (a single entry or one contiguous record, depending
/// on [`ArrayBenchConfig::record_words`]) or one update per step.
/// [`ArrayBenchBody::prepare`] draws the random targets for the next
/// transaction (outside the body, so retries reuse them, like the original
/// benchmark).
#[derive(Debug)]
pub struct ArrayBenchBody {
    data: ArrayBenchData,
    read_targets: Vec<u32>,
    update_targets: Vec<u32>,
    /// Staging buffer for record reads (the tasklet's WRAM scratch).
    record_buf: Vec<u64>,
    /// Staging buffer for update-record read-modify-writes.
    update_buf: Vec<u64>,
    position: usize,
}

impl ArrayBenchBody {
    /// Creates a body over the shared array.
    pub fn new(data: ArrayBenchData) -> Self {
        let record_buf = vec![0u64; data.config.record_words.max(1) as usize];
        let update_buf = vec![0u64; data.config.update_record_words.max(1) as usize];
        ArrayBenchBody {
            data,
            read_targets: Vec::new(),
            update_targets: Vec::new(),
            record_buf,
            update_buf,
            position: 0,
        }
    }

    /// Draws the target entries of the next transaction.
    pub fn prepare(&mut self, rng: &mut SimRng) {
        let config = self.data.config;
        self.read_targets.clear();
        self.update_targets.clear();
        // Record starts stay inside the read region: a record spans
        // `record_words` consecutive entries from its start.
        let start_range =
            u64::from(config.read_region.saturating_sub(config.record_words.saturating_sub(1)));
        for _ in 0..config.read_records_per_tx() {
            self.read_targets.push(rng.next_range(start_range) as u32);
        }
        // Update-record starts likewise stay inside the update region.
        let update_range = u64::from(
            config.update_region.saturating_sub(config.update_record_words.saturating_sub(1)),
        );
        for _ in 0..config.update_records_per_tx() {
            self.update_targets.push(rng.next_range(update_range) as u32);
        }
    }

    fn total_ops(&self) -> usize {
        self.read_targets.len() + self.update_targets.len()
    }
}

impl TxBody for ArrayBenchBody {
    fn reset(&mut self) {
        self.position = 0;
    }

    fn step<O: TxOps>(&mut self, tx: &mut O) -> Result<BodyStep, Abort> {
        let position = self.position;
        if position < self.read_targets.len() {
            let start = self.read_targets[position];
            if self.data.config.record_words > 1 {
                tx.read_words(self.data.read_record_addr(start), &mut self.record_buf)?;
            } else {
                tx.get(self.data.read_entry(start))?;
            }
        } else if position < self.total_ops() {
            let start = self.update_targets[position - self.read_targets.len()];
            if self.data.config.update_record_words > 1 {
                // Read-modify-write one contiguous record: the record write
                // takes the multi-ORec acquisition path under encounter-time
                // locking.
                let addr = self.data.update_record_addr(start);
                tx.read_words(addr, &mut self.update_buf)?;
                for value in &mut self.update_buf {
                    *value = value.wrapping_add(1);
                }
                tx.write_words(addr, &self.update_buf)?;
            } else {
                let entry = self.data.update_entry(start);
                let value = tx.get(entry)?;
                tx.set(entry, value.wrapping_add(1))?;
            }
        }
        self.position += 1;
        if self.position >= self.total_ops() {
            Ok(BodyStep::Done)
        } else {
            Ok(BodyStep::Continue)
        }
    }
}

/// One simulated tasklet of the ArrayBench benchmark: picks targets, then
/// lets the shared [`SimTxRunner`] drive the body.
pub struct ArrayBenchProgram {
    runner: SimTxRunner,
    body: ArrayBenchBody,
    rng: SimRng,
    remaining: u32,
    in_transaction: bool,
}

impl ArrayBenchProgram {
    /// Creates one tasklet program.
    pub fn new(tm: TxMachine, data: ArrayBenchData, rng: SimRng) -> Self {
        let remaining = data.config.transactions_per_tasklet;
        ArrayBenchProgram {
            runner: SimTxRunner::new(tm),
            body: ArrayBenchBody::new(data),
            rng,
            remaining,
            in_transaction: false,
        }
    }

    /// Transactions committed so far.
    pub fn commits(&self) -> u64 {
        self.runner.machine().commits()
    }
}

impl TaskletProgram for ArrayBenchProgram {
    fn step(&mut self, ctx: &mut TaskletCtx<'_>) -> StepStatus {
        if !self.in_transaction {
            if self.remaining == 0 {
                return StepStatus::Finished;
            }
            self.remaining -= 1;
            self.body.prepare(&mut self.rng);
            self.in_transaction = true;
            return StepStatus::Running;
        }
        if self.runner.step(ctx, &mut self.body) == TxStatus::Committed {
            self.in_transaction = false;
        }
        StepStatus::Running
    }

    fn label(&self) -> &str {
        "array-bench"
    }
}

/// Builds the per-tasklet programs for one ArrayBench run.
///
/// The caller has already allocated the STM instance (`shared`) on `dpu`; the
/// returned programs share the same array.
pub fn build(
    dpu: &mut Dpu,
    shared: &StmShared,
    config: ArrayBenchConfig,
    tasklets: usize,
    seed: u64,
) -> (ArrayBenchData, Vec<Box<dyn TaskletProgram>>) {
    let data = ArrayBenchData::allocate(dpu, config);
    let alg = algorithm_for(shared.config().kind);
    let programs = (0..tasklets)
        .map(|t| {
            let slot = shared
                .register_tasklet(dpu, t)
                .expect("per-tasklet STM logs must fit in the metadata tier");
            let tm = TxMachine::new(shared.clone(), slot, alg);
            Box::new(ArrayBenchProgram::new(tm, data, tasklet_rng(seed, t)))
                as Box<dyn TaskletProgram>
        })
        .collect();
    (data, programs)
}

/// Runs the same workload — the same [`ArrayBenchBody`] — on the threaded
/// executor. `dpu` must already hold the STM instance this run uses.
///
/// # Errors
///
/// Returns [`RunError`] if the tasklet count exceeds the hardware limit or
/// the per-tasklet transaction logs do not fit.
pub fn run_threaded(
    dpu: &mut ThreadedDpu,
    config: ArrayBenchConfig,
    tasklets: usize,
    seed: u64,
) -> Result<(ArrayBenchData, ThreadedRunReport), RunError> {
    let data = ArrayBenchData::allocate(dpu, config);
    let report = dpu.run(tasklets, |mut tasklet| {
        let mut rng = tasklet_rng(seed, tasklet.tasklet_id());
        let mut body = ArrayBenchBody::new(data);
        for _ in 0..config.transactions_per_tasklet {
            body.prepare(&mut rng);
            run_tx_body(&mut tasklet, &mut body);
        }
    })?;
    Ok((data, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{DpuConfig, Scheduler};
    use pim_stm::{MetadataPlacement, StmConfig, StmKind};

    fn run_arraybench(kind: StmKind, cfg: ArrayBenchConfig, tasklets: usize) -> (u64, f64) {
        let mut dpu = Dpu::new(DpuConfig::default());
        let stm_cfg = StmConfig::new(kind, MetadataPlacement::Mram)
            .with_read_set_capacity(cfg.read_set_capacity())
            .with_write_set_capacity(cfg.write_set_capacity());
        let shared = StmShared::allocate(&mut dpu, stm_cfg).unwrap();
        let (data, programs) = build(&mut dpu, &shared, cfg, tasklets, 42);
        let report = Scheduler::new().run(&mut dpu, programs);
        let expected_commits = cfg.transactions_per_tasklet as u64 * tasklets as u64;
        assert_eq!(report.total_commits(), expected_commits, "{kind}: committed tx count");
        // Every committed transaction increments `updates_per_tx` array
        // entries by one; lost updates would show up here.
        let expected_sum = expected_commits * u64::from(cfg.updates_applied_per_tx());
        assert_eq!(data.update_region_sum(&dpu), expected_sum, "{kind}: lost updates");
        (report.total_aborts(), report.throughput_tx_per_sec())
    }

    #[test]
    fn workload_a_parameters_match_the_paper() {
        let a = ArrayBenchConfig::workload_a();
        assert_eq!(a.array_words(), 12_500);
        assert_eq!(a.reads_per_tx, 100);
        assert_eq!(a.updates_per_tx, 20);
        // The 100 read entries move as five 20-entry records.
        assert_eq!(a.record_words, 20);
        assert_eq!(a.read_records_per_tx(), 5);
        let b = ArrayBenchConfig::workload_b();
        assert_eq!(b.update_region, 10);
        assert_eq!(b.updates_per_tx, 4);
        assert_eq!(b.record_words, 1);
    }

    #[test]
    fn record_reads_fill_the_read_set_with_every_record_word() {
        // A read-only single-tasklet cell: 2 records of 8 words each must
        // leave 16 read-set entries (per-word metadata bookkeeping survives
        // the batched data movement).
        let cfg = ArrayBenchConfig {
            read_region: 64,
            update_region: 4,
            reads_per_tx: 16,
            record_words: 8,
            updates_per_tx: 1,
            update_record_words: 1,
            transactions_per_tasklet: 3,
        };
        for kind in [StmKind::TinyEtlWb, StmKind::VrCtlWb, StmKind::Norec] {
            run_arraybench(kind, cfg, 2);
        }
    }

    #[test]
    fn grouped_updates_conserve_increments_for_every_design() {
        // Workload B with its 4 updates grouped into one contiguous 4-entry
        // record: under encounter-time locking the record write goes through
        // the sorted multi-ORec acquisition, and the conservation check
        // (updates_applied_per_tx per commit) must still hold.
        let cfg = ArrayBenchConfig::workload_b().with_update_record_words(4).scaled(0.1);
        assert_eq!(cfg.update_records_per_tx(), 1);
        assert_eq!(cfg.updates_applied_per_tx(), 4);
        for kind in StmKind::ALL {
            run_arraybench(kind, cfg, 4);
        }
    }

    #[test]
    #[should_panic(expected = "update_record_words")]
    fn update_records_larger_than_the_region_are_rejected() {
        let cfg = ArrayBenchConfig::workload_b().with_update_record_words(20);
        let mut dpu = Dpu::new(DpuConfig::small());
        let _ = ArrayBenchData::allocate(&mut dpu, cfg);
    }

    #[test]
    fn workload_b_is_linearizable_for_every_design() {
        let cfg = ArrayBenchConfig::workload_b().scaled(0.2);
        for kind in StmKind::ALL {
            run_arraybench(kind, cfg, 4);
        }
    }

    #[test]
    fn workload_a_is_linearizable_for_norec_and_tiny() {
        let cfg =
            ArrayBenchConfig { transactions_per_tasklet: 10, ..ArrayBenchConfig::workload_a() };
        for kind in [StmKind::Norec, StmKind::TinyEtlWb, StmKind::VrEtlWt] {
            run_arraybench(kind, cfg, 3);
        }
    }

    #[test]
    fn high_contention_workload_generates_aborts() {
        let cfg = ArrayBenchConfig::workload_b().scaled(0.5);
        let mut total_aborts = 0;
        for kind in [StmKind::TinyEtlWb, StmKind::VrEtlWb, StmKind::Norec] {
            let (aborts, _) = run_arraybench(kind, cfg, 8);
            total_aborts += aborts;
        }
        assert!(total_aborts > 0, "workload B with 8 tasklets must conflict sometimes");
    }

    #[test]
    fn the_same_body_runs_threaded_without_losing_updates() {
        let cfg = ArrayBenchConfig::workload_b().scaled(0.25);
        let stm_cfg = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram)
            .with_read_set_capacity(cfg.read_set_capacity())
            .with_write_set_capacity(cfg.write_set_capacity());
        let mut dpu = ThreadedDpu::new(stm_cfg).unwrap();
        let (data, report) = run_threaded(&mut dpu, cfg, 4, 42).unwrap();
        let expected = cfg.transactions_per_tasklet as u64 * 4;
        assert_eq!(report.commits, expected);
        assert_eq!(data.update_region_sum(&dpu), expected * u64::from(cfg.updates_per_tx));
    }

    #[test]
    fn scaling_keeps_at_least_one_transaction() {
        let cfg = ArrayBenchConfig::workload_a().scaled(0.0001);
        assert_eq!(cfg.transactions_per_tasklet, 1);
    }

    #[test]
    fn single_entry_reads_remain_reachable() {
        // `.with_record_words(1)` restores the paper's original scattered
        // single-entry read phase.
        let cfg = ArrayBenchConfig {
            transactions_per_tasklet: 5,
            ..ArrayBenchConfig::workload_a().with_record_words(1)
        };
        assert_eq!(cfg.read_records_per_tx(), 100);
        run_arraybench(StmKind::TinyEtlWb, cfg, 2);
    }

    #[test]
    #[should_panic(expected = "record_words")]
    fn records_larger_than_the_read_region_are_rejected() {
        let cfg = ArrayBenchConfig {
            read_region: 10,
            record_words: 20,
            reads_per_tx: 20,
            ..ArrayBenchConfig::workload_a()
        };
        let mut dpu = Dpu::new(DpuConfig::small());
        let _ = ArrayBenchData::allocate(&mut dpu, cfg);
    }

    #[test]
    #[should_panic(expected = "read phase would silently vanish")]
    fn records_longer_than_the_read_budget_are_rejected() {
        // 150-word records with a 100-entry read budget would floor the
        // record count to zero and quietly drop the read phase.
        let cfg = ArrayBenchConfig::workload_a().with_record_words(150);
        let mut dpu = Dpu::new(DpuConfig::small());
        let _ = ArrayBenchData::allocate(&mut dpu, cfg);
    }
}
