//! # pim-workloads — the PIM-STM evaluation workloads
//!
//! Rust ports of every benchmark used in §4.1 of the PIM-STM paper. Each
//! workload's transaction logic is written **once**, against the typed
//! [`pim_stm::TxOps`] facade, as a resumable [`TxBody`] — and that single
//! body runs on both executors through [`spec::RunSpec::run_on`]:
//!
//! * on the deterministic **simulator**, [`driver::SimTxRunner`] steps the
//!   body one operation per scheduler slot, so the discrete-event scheduler
//!   interleaves individual transactional operations of concurrent tasklets
//!   (which is what makes conflicts, aborts and the time-breakdown plots
//!   meaningful);
//! * on the **threaded executor**, [`driver::run_tx_body`] loops the same
//!   body to completion inside one retry-managed transaction closure.
//!
//! The workloads:
//!
//! * [`array_bench`] — the synthetic ArrayBench micro-benchmark, workloads A
//!   (large read phase, low contention) and B (tiny, highly contended
//!   read-modify-write transactions);
//! * [`linked_list`] — a sorted transactional linked list exercised with
//!   `contains`/`add`/`remove` mixes (low- and high-contention variants);
//! * [`kmeans`] — the STAMP KMeans port (non-transactional nearest-centroid
//!   search, transactional centroid update), low and high contention;
//! * [`labyrinth`] — the STAMP Labyrinth port (Lee maze router on a 3-D
//!   grid; long transactions that copy the grid privately, route, then claim
//!   the path transactionally), S/M/L grid sizes;
//! * [`sharded`] — the fleet-scale sharded counter array: a global,
//!   shard-count-independent transaction stream range-partitioned across N
//!   DPUs, with host-side routing of cross-shard transactions
//!   (route-to-owner vs abort-and-retry). Driven by the `pim-fleet`
//!   orchestration layer rather than [`spec::RunSpec`].
//!
//! [`spec`] ties everything together: a [`spec::Workload`] names a paper
//! workload, and [`spec::RunSpec::run_on`] builds the DPU (simulated or
//! threaded), the STM instance and the tasklet bodies, runs them and returns
//! the unified [`spec::WorkloadReport`] (commits, aborts, final-state
//! fingerprint, invariant checking, and — on the simulator — the full
//! cycle-level report the figures are drawn from).
//!
//! # Writing a new `TxOps` workload body
//!
//! 1. **Shape the shared data with typed handles.** Allocate
//!    [`pim_stm::TVar`]s / [`pim_stm::TArray`]s through
//!    [`pim_stm::var::alloc_var`] / [`pim_stm::var::alloc_array`] — generic
//!    over [`pim_stm::shared::MetadataAllocator`], so the same `Data` struct
//!    builds on a simulated [`pim_sim::Dpu`] and on a
//!    [`pim_stm::threaded::ThreadedDpu`]. Pointer-shaped structures wrap
//!    their raw addresses in `TVar::new` (see [`linked_list`]).
//! 2. **Implement [`TxBody`].** Keep a program counter in the struct;
//!    [`TxBody::step`] issues roughly **one transactional operation per
//!    call** and returns [`BodyStep::Done`] on the step that issues the
//!    last one. [`TxBody::reset`] rewinds the counter — it is called at the
//!    start of every attempt, including retries.
//! 3. **Obey the transaction contract** (from the PR 1 `TxOps` contract):
//!    *propagate aborts* with `?` — never swallow an
//!    [`pim_stm::Abort`]; *no side effects* — anything outside the
//!    transactional ops is repeated on every retry, so per-operation inputs
//!    (random targets, reserved pool slots) are installed **before** the
//!    body by a `prepare`-style method and reused across retries, while
//!    outcomes are read **after** the commit. For application-level
//!    restarts return `Err(tx.cancel())` — see [`labyrinth::RouteTxBody`].
//!    Non-transactional bulk data (private scratch grids, racy snapshots
//!    that are re-validated transactionally) moves through the raw facade
//!    ops ([`pim_stm::TxOps::raw_copy`] and friends).
//! 4. **Drive it on both executors.** A `build` function wires
//!    per-tasklet programs ([`driver::SimTxRunner`] + your body) for the
//!    scheduler; a `run_threaded` function loops
//!    [`driver::run_tx_body`] over the same body. Derive per-tasklet RNG
//!    streams with [`driver::tasklet_rng`] so seeded runs draw identical
//!    sequences on both executors, then register the workload in [`spec`]
//!    (fingerprint + invariants) to get cross-executor checking for free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array_bench;
pub mod driver;
pub mod kmeans;
pub mod labyrinth;
pub mod linked_list;
pub mod sharded;
pub mod spec;
pub mod structs;

pub use driver::{run_tx_body, BodyStep, SimTxRunner, TxBody, TxMachine, TxStatus};
pub use sharded::{GlobalTx, RoutingPolicy, ShardMap, ShardTx, ShardedWorkloadConfig};
pub use spec::{Executor, RunSpec, Workload, WorkloadReport};
pub use structs::{MapFull, TxHashMap, TxQueue};
