//! # pim-workloads — the PIM-STM evaluation workloads
//!
//! Rust ports of every benchmark used in §4.1 of the PIM-STM paper, written
//! as step-granular [`pim_sim::TaskletProgram`]s over the `pim-stm` API so
//! that the deterministic simulator interleaves individual transactional
//! operations of concurrent tasklets (which is what makes conflicts, aborts
//! and the time-breakdown plots meaningful):
//!
//! * [`array_bench`] — the synthetic ArrayBench micro-benchmark, workloads A
//!   (large read phase, low contention) and B (tiny, highly contended
//!   read-modify-write transactions);
//! * [`linked_list`] — a sorted transactional linked list exercised with
//!   `contains`/`add`/`remove` mixes (low- and high-contention variants);
//! * [`kmeans`] — the STAMP KMeans port (non-transactional nearest-centroid
//!   search, transactional centroid update), low and high contention;
//! * [`labyrinth`] — the STAMP Labyrinth port (Lee maze router on a 3-D
//!   grid; long transactions that copy the grid privately, route, then claim
//!   the path transactionally), S/M/L grid sizes.
//!
//! [`spec`] ties everything together: a [`spec::Workload`] names a paper
//! workload, and [`spec::RunSpec::run`] builds the DPU, the STM instance and
//! the tasklet programs, runs the deterministic scheduler and returns the
//! throughput / abort-rate / phase-breakdown report the figures are drawn
//! from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array_bench;
pub mod driver;
pub mod kmeans;
pub mod labyrinth;
pub mod linked_list;
pub mod spec;

pub use driver::TxMachine;
pub use spec::{RunSpec, Workload};
