//! Run specifications: one place that knows how to set up and execute every
//! workload of the paper's evaluation — on the cycle-accounted simulator
//! *and* on the threaded executor.
//!
//! [`RunSpec::run_on`] is the cross-executor entry point: the same seeded
//! specification builds the same data structures and drives the same
//! [`crate::driver::TxBody`] transaction bodies on either [`Executor`], and
//! returns one unified [`WorkloadReport`] (commit/abort counts, a
//! final-state fingerprint, invariant checking, and — on the simulator —
//! the full cycle-level [`DpuRunReport`]). `pim-exp` and `pim-bench` both
//! consume this report type.

use pim_sim::{Dpu, DpuConfig, DpuRunReport, Scheduler};
use pim_stm::threaded::{ThreadedDpu, DEFAULT_MRAM_WORDS, DEFAULT_WRAM_WORDS};
use pim_stm::var::WordAccess;
use pim_stm::{
    ExecProfile, LockOrder, MetadataPlacement, ReadStrategy, RetryPolicy, StmConfig, StmKind,
    StmShared, TimeDomain, TunePolicy, WriteBackStrategy,
};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::array_bench::{self, ArrayBenchConfig, ArrayBenchData};
use crate::kmeans::{self, KmeansConfig, KmeansData};
use crate::labyrinth::{self, LabyrinthConfig, LabyrinthData};
use crate::linked_list::{self, LinkedListConfig, LinkedListData};

/// The evaluation workloads of §4.1/§4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Workload {
    /// ArrayBench workload A (large read phase, low contention).
    ArrayA,
    /// ArrayBench workload B (tiny highly contended transactions).
    ArrayB,
    /// Linked list, low contention (90 % `contains`).
    ListLc,
    /// Linked list, high contention (50 % `contains`).
    ListHc,
    /// KMeans, low contention (k = 15).
    KmeansLc,
    /// KMeans, high contention (k = 2).
    KmeansHc,
    /// Labyrinth on the 16×16×3 grid.
    LabyrinthS,
    /// Labyrinth on the 32×32×3 grid.
    LabyrinthM,
    /// Labyrinth on the 128×128×3 grid.
    LabyrinthL,
}

impl Workload {
    /// All workloads, in the order the paper presents them.
    pub const ALL: [Workload; 9] = [
        Workload::ArrayA,
        Workload::ArrayB,
        Workload::ListLc,
        Workload::ListHc,
        Workload::KmeansLc,
        Workload::KmeansHc,
        Workload::LabyrinthS,
        Workload::LabyrinthM,
        Workload::LabyrinthL,
    ];

    /// The workloads used for the single-DPU design-space study (Fig. 4–6).
    pub const FIGURE_4_5: [Workload; 8] = [
        Workload::ArrayA,
        Workload::ArrayB,
        Workload::ListLc,
        Workload::ListHc,
        Workload::KmeansLc,
        Workload::KmeansHc,
        Workload::LabyrinthS,
        Workload::LabyrinthL,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::ArrayA => "array-a",
            Workload::ArrayB => "array-b",
            Workload::ListLc => "list-lc",
            Workload::ListHc => "list-hc",
            Workload::KmeansLc => "kmeans-lc",
            Workload::KmeansHc => "kmeans-hc",
            Workload::LabyrinthS => "labyrinth-s",
            Workload::LabyrinthM => "labyrinth-m",
            Workload::LabyrinthL => "labyrinth-l",
        }
    }

    /// Parses a CLI name (case-insensitive).
    pub fn parse(name: &str) -> Option<Workload> {
        let canon = name.to_ascii_lowercase();
        Workload::ALL.into_iter().find(|w| w.name() == canon)
    }

    /// Which figure panel of the paper this workload appears in.
    pub fn figure(self) -> &'static str {
        match self {
            Workload::ArrayA => "Fig. 4a/e/i",
            Workload::ArrayB => "Fig. 4b/f/j",
            Workload::ListLc => "Fig. 4c/g/k",
            Workload::ListHc => "Fig. 4d/h/l",
            Workload::KmeansLc => "Fig. 5a/e/i",
            Workload::KmeansHc => "Fig. 5b/f/j",
            Workload::LabyrinthS => "Fig. 5c/g/k",
            Workload::LabyrinthM => "Fig. 7b (multi-DPU)",
            Workload::LabyrinthL => "Fig. 5d/h/l",
        }
    }

    /// Whether the STM metadata of this workload fits in WRAM (the paper
    /// excludes Labyrinth from the WRAM study because its read/write sets do
    /// not fit).
    pub fn supports_wram_metadata(self) -> bool {
        !matches!(self, Workload::LabyrinthS | Workload::LabyrinthM | Workload::LabyrinthL)
    }

    /// Whether the workload's final committed state is independent of the
    /// interleaving (all its transactions commute — ArrayBench increments,
    /// KMeans accumulator folds). For these workloads a seeded run produces
    /// the **same fingerprint on every executor**; for the others
    /// (linked list, Labyrinth) only the structural invariants are
    /// executor-independent.
    pub fn commutative(self) -> bool {
        matches!(
            self,
            Workload::ArrayA | Workload::ArrayB | Workload::KmeansLc | Workload::KmeansHc
        )
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The two ways a [`RunSpec`] can be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Executor {
    /// The deterministic, cycle-accounted discrete-event simulator
    /// ([`pim_sim`]): produces the full [`DpuRunReport`] behind the paper's
    /// figures.
    Simulator,
    /// Real OS threads over atomic shared memory
    /// ([`pim_stm::threaded::ThreadedDpu`]): no timing model, genuine
    /// concurrency — the correctness cross-check.
    Threaded,
}

impl Executor {
    /// Both executors.
    pub const ALL: [Executor; 2] = [Executor::Simulator, Executor::Threaded];

    /// Short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Executor::Simulator => "simulator",
            Executor::Threaded => "threaded",
        }
    }

    /// The native unit this executor's profiles measure time in.
    pub fn time_domain(self) -> TimeDomain {
        match self {
            Executor::Simulator => TimeDomain::Cycles,
            Executor::Threaded => TimeDomain::WallNanos,
        }
    }
}

impl fmt::Display for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully specified single-DPU run: workload × STM design × metadata
/// placement × tasklet count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Which workload to run.
    pub workload: Workload,
    /// Which STM design to use.
    pub kind: StmKind,
    /// Where the STM metadata lives.
    pub placement: MetadataPlacement,
    /// Number of tasklets (1–24; the paper sweeps 1–11).
    pub tasklets: usize,
    /// PRNG seed (runs are deterministic given the same seed).
    pub seed: u64,
    /// Scale factor applied to the workload's operation counts; < 1.0 makes
    /// runs proportionally shorter (used by the Criterion benches).
    pub scale: f64,
    /// How write-back commits publish their redo log.
    pub write_back: WriteBackStrategy,
    /// How record reads move their data.
    pub read_strategy: ReadStrategy,
    /// How aborted attempts back off before retrying (the retry axis of the
    /// policy grid; see [`RetryPolicy`]).
    pub retry: RetryPolicy,
    /// Burst cap (in words) for coalesced write-back and batched reads.
    pub max_burst_words: u32,
    /// Multi-ORec acquisition order for grouped record writes under
    /// encounter-time locking (the lock-order axis of the policy grid; no
    /// effect on commit-time designs).
    pub lock_order: LockOrder,
    /// Whether each tasklet's engine tunes its runtime-switchable knobs
    /// online (see [`pim_stm::tune`]); default [`TunePolicy::Static`].
    pub tune: TunePolicy,
    /// Override for ArrayBench's read-phase record grouping
    /// ([`ArrayBenchConfig::record_words`]); `Some(1)` restores the paper's
    /// original scattered single-entry reads. Ignored by other workloads.
    pub record_words: Option<u32>,
}

impl RunSpec {
    /// Creates a run specification with the default seed and full scale.
    pub fn new(
        workload: Workload,
        kind: StmKind,
        placement: MetadataPlacement,
        tasklets: usize,
    ) -> Self {
        RunSpec {
            workload,
            kind,
            placement,
            tasklets,
            seed: 42,
            scale: 1.0,
            write_back: WriteBackStrategy::default(),
            read_strategy: ReadStrategy::default(),
            retry: RetryPolicy::default(),
            max_burst_words: pim_stm::config::DEFAULT_BURST_WORDS,
            lock_order: LockOrder::default(),
            tune: TunePolicy::Static,
            record_words: None,
        }
    }

    /// Overrides the operation-count scale factor.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Overrides the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the commit write-back strategy (default: coalesced).
    pub fn with_write_back(mut self, strategy: WriteBackStrategy) -> Self {
        self.write_back = strategy;
        self
    }

    /// Overrides the record-read strategy (default: batched).
    pub fn with_read_strategy(mut self, strategy: ReadStrategy) -> Self {
        self.read_strategy = strategy;
        self
    }

    /// Overrides the retry/back-off policy (default: exponential, the
    /// pre-policy-grid behaviour).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Overrides the DMA burst cap shared by coalesced write-back and
    /// batched reads (default: [`pim_stm::config::DEFAULT_BURST_WORDS`]).
    pub fn with_max_burst_words(mut self, words: u32) -> Self {
        self.max_burst_words = words;
        self
    }

    /// Overrides the multi-ORec acquisition order for grouped record writes
    /// (default: address-sorted; only encounter-time designs consult it).
    pub fn with_lock_order(mut self, order: LockOrder) -> Self {
        self.lock_order = order;
        self
    }

    /// Overrides the online-tuning policy (default: static, i.e. no
    /// tuning). Under [`TunePolicy::Windowed`] every tasklet engine — on
    /// either executor — re-evaluates its runtime-switchable knobs each
    /// window of attempts; see [`pim_stm::tune`].
    pub fn with_tune(mut self, policy: TunePolicy) -> Self {
        self.tune = policy;
        self
    }

    /// Overrides ArrayBench's read-phase record grouping; `1` restores the
    /// paper's original scattered single-entry reads (no effect on other
    /// workloads).
    pub fn with_record_words(mut self, words: u32) -> Self {
        self.record_words = Some(words);
        self
    }

    /// The STM configuration (log capacities, lock-table size and placement)
    /// appropriate for this workload, mirroring the sizing discussion in the
    /// paper.
    pub fn stm_config(&self) -> StmConfig {
        let base = StmConfig::new(self.kind, self.placement)
            .with_write_back(self.write_back)
            .with_read_strategy(self.read_strategy)
            .with_retry(self.retry)
            .with_max_burst_words(self.max_burst_words)
            .with_lock_order(self.lock_order)
            .with_tune(self.tune);
        match self.workload {
            Workload::ArrayA => {
                let cfg = ArrayBenchConfig::workload_a();
                // The paper sizes the ORec lock table to the array and notes
                // that it does not fit in WRAM for this workload, so the
                // table stays in MRAM even when the rest of the metadata is
                // promoted to WRAM.
                let stm = base
                    .with_read_set_capacity(cfg.read_set_capacity())
                    .with_write_set_capacity(cfg.write_set_capacity())
                    .with_lock_table_entries(16 * 1024);
                if self.placement == MetadataPlacement::Wram {
                    stm.with_lock_table_placement(MetadataPlacement::Mram)
                } else {
                    stm
                }
            }
            Workload::ArrayB => {
                let cfg = ArrayBenchConfig::workload_b();
                base.with_read_set_capacity(cfg.read_set_capacity())
                    .with_write_set_capacity(cfg.write_set_capacity())
                    .with_lock_table_entries(1024)
            }
            Workload::ListLc | Workload::ListHc => {
                let cfg = self.list_config();
                base.with_read_set_capacity(cfg.read_set_capacity())
                    .with_write_set_capacity(cfg.write_set_capacity())
                    .with_lock_table_entries(1024)
            }
            Workload::KmeansLc | Workload::KmeansHc => {
                let cfg = self.kmeans_config();
                base.with_read_set_capacity(cfg.read_set_capacity())
                    .with_write_set_capacity(cfg.write_set_capacity())
                    .with_lock_table_entries(1024)
            }
            Workload::LabyrinthS | Workload::LabyrinthM | Workload::LabyrinthL => {
                let cfg = self.labyrinth_config();
                base.with_read_set_capacity(cfg.read_set_capacity())
                    .with_write_set_capacity(cfg.write_set_capacity())
                    .with_lock_table_entries(1024)
            }
        }
    }

    fn array_config(&self) -> ArrayBenchConfig {
        let config = match self.workload {
            Workload::ArrayA => ArrayBenchConfig::workload_a().scaled(self.scale),
            Workload::ArrayB => ArrayBenchConfig::workload_b().scaled(self.scale),
            _ => unreachable!("not an ArrayBench workload"),
        };
        match self.record_words {
            Some(words) => config.with_record_words(words),
            None => config,
        }
    }

    fn list_config(&self) -> LinkedListConfig {
        match self.workload {
            Workload::ListLc => LinkedListConfig::low_contention().scaled(self.scale),
            Workload::ListHc => LinkedListConfig::high_contention().scaled(self.scale),
            _ => unreachable!("not a linked-list workload"),
        }
    }

    fn kmeans_config(&self) -> KmeansConfig {
        match self.workload {
            Workload::KmeansLc => KmeansConfig::low_contention().scaled(self.scale),
            Workload::KmeansHc => KmeansConfig::high_contention().scaled(self.scale),
            _ => unreachable!("not a KMeans workload"),
        }
    }

    fn labyrinth_config(&self) -> LabyrinthConfig {
        match self.workload {
            Workload::LabyrinthS => LabyrinthConfig::small().scaled(self.scale),
            Workload::LabyrinthM => LabyrinthConfig::medium().scaled(self.scale),
            Workload::LabyrinthL => LabyrinthConfig::large().scaled(self.scale),
            _ => unreachable!("not a Labyrinth workload"),
        }
    }

    fn assert_feasible(&self) {
        assert!(
            self.placement == MetadataPlacement::Mram || self.workload.supports_wram_metadata(),
            "{} cannot keep its STM metadata in WRAM (transaction logs exceed 64 KB)",
            self.workload
        );
    }

    /// Builds the DPU, STM instance and tasklet programs, runs the
    /// deterministic scheduler and returns the raw simulator report
    /// (throughput, abort rate, phase breakdown).
    ///
    /// This is the simulator-only shorthand kept for the figure pipeline;
    /// [`RunSpec::run_on`] wraps the same run in the executor-agnostic
    /// [`WorkloadReport`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is infeasible — e.g. WRAM metadata
    /// placement for Labyrinth, whose transaction logs exceed WRAM capacity
    /// (the paper excludes this combination for the same reason).
    pub fn run(&self) -> DpuRunReport {
        self.run_on(Executor::Simulator).sim.expect("simulator runs carry the full report")
    }

    /// Runs this specification on `executor` and returns the unified report.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is infeasible (see [`RunSpec::run`]); on
    /// the threaded executor additionally if the tasklet count exceeds the
    /// hardware limit.
    pub fn run_on(&self, executor: Executor) -> WorkloadReport {
        self.assert_feasible();
        match executor {
            Executor::Simulator => self.run_simulated(),
            Executor::Threaded => self.run_threaded(),
        }
    }

    fn run_simulated(&self) -> WorkloadReport {
        let mut dpu = Dpu::new(DpuConfig::default());
        let shared = StmShared::allocate(&mut dpu, self.stm_config())
            .expect("STM metadata must fit in the configured tier");
        let (data, programs) = self.build_programs(&mut dpu, &shared);
        let report = Scheduler::new().run(&mut dpu, programs);
        let profiles: Vec<ExecProfile> =
            report.tasklet_stats.iter().map(ExecProfile::from_sim).collect();
        self.finish_report(
            Executor::Simulator,
            data,
            &dpu,
            report.total_commits(),
            report.total_aborts(),
            profiles,
            Some(report),
        )
    }

    fn build_programs(
        &self,
        dpu: &mut Dpu,
        shared: &StmShared,
    ) -> (DataHandles, Vec<Box<dyn pim_sim::TaskletProgram>>) {
        match self.workload {
            Workload::ArrayA | Workload::ArrayB => {
                let (data, programs) =
                    array_bench::build(dpu, shared, self.array_config(), self.tasklets, self.seed);
                (DataHandles::Array(data), programs)
            }
            Workload::ListLc | Workload::ListHc => {
                let (data, programs) =
                    linked_list::build(dpu, shared, self.list_config(), self.tasklets, self.seed);
                (DataHandles::List(data), programs)
            }
            Workload::KmeansLc | Workload::KmeansHc => {
                let (data, programs) =
                    kmeans::build(dpu, shared, self.kmeans_config(), self.tasklets, self.seed);
                (DataHandles::Kmeans(data), programs)
            }
            Workload::LabyrinthS | Workload::LabyrinthM | Workload::LabyrinthL => {
                let (data, programs) = labyrinth::build(
                    dpu,
                    shared,
                    self.labyrinth_config(),
                    self.tasklets,
                    self.seed,
                );
                (DataHandles::Labyrinth(data), programs)
            }
        }
    }

    fn run_threaded(&self) -> WorkloadReport {
        let mut dpu =
            ThreadedDpu::with_capacity(self.stm_config(), DEFAULT_WRAM_WORDS, self.mram_words())
                .expect("STM metadata must fit in the configured tier");
        let (data, report) = match self.workload {
            Workload::ArrayA | Workload::ArrayB => {
                let (data, report) = array_bench::run_threaded(
                    &mut dpu,
                    self.array_config(),
                    self.tasklets,
                    self.seed,
                )
                .expect("threaded ArrayBench run must be schedulable");
                (DataHandles::Array(data), report)
            }
            Workload::ListLc | Workload::ListHc => {
                let (data, report) = linked_list::run_threaded(
                    &mut dpu,
                    self.list_config(),
                    self.tasklets,
                    self.seed,
                )
                .expect("threaded linked-list run must be schedulable");
                (DataHandles::List(data), report)
            }
            Workload::KmeansLc | Workload::KmeansHc => {
                let (data, report) =
                    kmeans::run_threaded(&mut dpu, self.kmeans_config(), self.tasklets, self.seed)
                        .expect("threaded KMeans run must be schedulable");
                (DataHandles::Kmeans(data), report)
            }
            Workload::LabyrinthS | Workload::LabyrinthM | Workload::LabyrinthL => {
                let (data, report) = labyrinth::run_threaded(
                    &mut dpu,
                    self.labyrinth_config(),
                    self.tasklets,
                    self.seed,
                )
                .expect("threaded Labyrinth run must be schedulable");
                (DataHandles::Labyrinth(data), report)
            }
        };
        self.finish_report(
            Executor::Threaded,
            data,
            &dpu,
            report.commits,
            report.aborts,
            report.profiles,
            None,
        )
    }

    /// MRAM capacity for a threaded run: the default bank, grown if the
    /// workload's data (for Labyrinth, including per-tasklet private grids)
    /// plus MRAM-resident metadata needs more.
    fn mram_words(&self) -> u32 {
        let config = self.stm_config();
        let metadata = config.shared_metadata_words()
            + config.per_tasklet_metadata_words() * self.tasklets as u32;
        let data = match self.workload {
            Workload::ArrayA | Workload::ArrayB => self.array_config().array_words(),
            Workload::ListLc | Workload::ListHc => self.list_config().data_words(self.tasklets),
            Workload::KmeansLc | Workload::KmeansHc => self.kmeans_config().data_words(),
            Workload::LabyrinthS | Workload::LabyrinthM | Workload::LabyrinthL => {
                self.labyrinth_config().data_words(self.tasklets)
            }
        };
        DEFAULT_MRAM_WORDS.max(data + metadata + 1024)
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_report<M: WordAccess + ?Sized>(
        &self,
        executor: Executor,
        data: DataHandles,
        mem: &M,
        commits: u64,
        aborts: u64,
        profiles: Vec<ExecProfile>,
        sim: Option<DpuRunReport>,
    ) -> WorkloadReport {
        let fingerprint = data.fingerprint(mem);
        let invariant_violation = data.validate(mem, self, commits).err();
        WorkloadReport {
            spec: *self,
            executor,
            commits,
            aborts,
            profiles,
            fingerprint,
            deterministic_final_state: self.workload.commutative(),
            invariant_violation,
            sim,
        }
    }
}

/// Typed handles to the shared data structures of one run, kept so the
/// harness can observe the final committed state.
enum DataHandles {
    Array(ArrayBenchData),
    List(LinkedListData),
    Kmeans(KmeansData),
    Labyrinth(LabyrinthData),
}

/// FNV-1a over a stream of words — the final-state fingerprint.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

impl DataHandles {
    /// Hashes the observable committed state of the workload's shared data.
    fn fingerprint<M: WordAccess + ?Sized>(&self, mem: &M) -> u64 {
        let mut hash = Fnv::new();
        match self {
            DataHandles::Array(data) => {
                for i in 0..data.array.len() {
                    hash.write(pim_stm::var::peek_var(mem, data.array.at(i)));
                }
            }
            DataHandles::List(data) => {
                for key in data.snapshot(mem) {
                    hash.write(key);
                }
            }
            DataHandles::Kmeans(data) => {
                for i in 0..data.centroids.len() {
                    hash.write(pim_stm::var::peek_var(mem, data.centroids.at(i)));
                }
            }
            DataHandles::Labyrinth(data) => {
                hash.write(data.jobs_claimed(mem));
                for i in 0..data.grid.len() {
                    hash.write(pim_stm::var::peek_var(mem, data.cell(i)));
                }
            }
        }
        hash.0
    }

    /// Checks the workload's conservation invariants against the committed
    /// state.
    fn validate<M: WordAccess + ?Sized>(
        &self,
        mem: &M,
        spec: &RunSpec,
        commits: u64,
    ) -> Result<(), String> {
        let tasklets = spec.tasklets as u64;
        match self {
            DataHandles::Array(data) => {
                let cfg = spec.array_config();
                let expected_commits = u64::from(cfg.transactions_per_tasklet) * tasklets;
                if commits != expected_commits {
                    return Err(format!("committed {commits} txs, expected {expected_commits}"));
                }
                let expected_sum = expected_commits * u64::from(cfg.updates_applied_per_tx());
                let sum = data.update_region_sum(mem);
                if sum != expected_sum {
                    return Err(format!(
                        "update region sums to {sum}, expected {expected_sum} (lost updates)"
                    ));
                }
                Ok(())
            }
            DataHandles::List(data) => {
                let cfg = spec.list_config();
                let expected_commits = u64::from(cfg.ops_per_tasklet) * tasklets;
                if commits != expected_commits {
                    return Err(format!("committed {commits} ops, expected {expected_commits}"));
                }
                let keys = data.snapshot(mem);
                for pair in keys.windows(2) {
                    if pair[0] >= pair[1] {
                        return Err(format!("list not sorted/unique around key {}", pair[0]));
                    }
                }
                if let Some(&bad) = keys.iter().find(|&&k| k < 1 || k > cfg.key_range) {
                    return Err(format!("key {bad} outside 1..={}", cfg.key_range));
                }
                Ok(())
            }
            DataHandles::Kmeans(data) => {
                let cfg = spec.kmeans_config();
                let expected = u64::from(cfg.points_per_tasklet) * tasklets;
                if commits != expected {
                    return Err(format!("committed {commits} folds, expected {expected}"));
                }
                let (members, _) = data.totals(mem);
                if members != expected {
                    return Err(format!(
                        "membership counts sum to {members}, expected {expected} (lost updates)"
                    ));
                }
                Ok(())
            }
            DataHandles::Labyrinth(data) => {
                let cfg = spec.labyrinth_config();
                // One pop per job, one final empty pop per tasklet, one
                // route transaction per job.
                let expected_commits = 2 * u64::from(cfg.paths) + tasklets;
                if commits != expected_commits {
                    return Err(format!("committed {commits} txs, expected {expected_commits}"));
                }
                data.validate(mem)
            }
        }
    }
}

/// Executor-agnostic result of one [`RunSpec`] run — what the experiment
/// harness and the benches consume.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// The specification that was run.
    pub spec: RunSpec,
    /// Which executor ran it.
    pub executor: Executor,
    /// Committed transactions across all tasklets.
    pub commits: u64,
    /// Aborted attempts across all tasklets.
    pub aborts: u64,
    /// One [`ExecProfile`] per tasklet (indexed by tasklet id), in the
    /// executor's native time domain: simulator cycles or wall-clock
    /// nanoseconds. This is the unified instrumentation schema — phase
    /// breakdown, abort-reason histogram, DMA traffic, back-off time — that
    /// both executors fill.
    pub profiles: Vec<ExecProfile>,
    /// FNV-1a hash of the final committed state of the workload's shared
    /// data. For [`Workload::commutative`] workloads this is identical
    /// across executors for the same seed; for all workloads it is identical
    /// across repeated simulator runs.
    pub fingerprint: u64,
    /// Whether `fingerprint` is expected to be executor-independent.
    pub deterministic_final_state: bool,
    /// First violated conservation invariant, if any (`None` = the committed
    /// state is consistent).
    pub invariant_violation: Option<String>,
    /// The full cycle-level report ([`Executor::Simulator`] only) — extra
    /// detail (makespan, atomic-register stats) beyond the unified profile.
    pub sim: Option<DpuRunReport>,
}

impl WorkloadReport {
    /// Abort rate in `[0, 1]` across all tasklets.
    pub fn abort_rate(&self) -> f64 {
        if self.commits + self.aborts == 0 {
            0.0
        } else {
            self.aborts as f64 / (self.commits + self.aborts) as f64
        }
    }

    /// The time domain of this run's profiles.
    pub fn time_domain(&self) -> TimeDomain {
        self.executor.time_domain()
    }

    /// All tasklets' profiles merged into one (an empty profile in the
    /// executor's time domain for a zero-tasklet run).
    pub fn merged_profile(&self) -> ExecProfile {
        ExecProfile::merged(&self.profiles).unwrap_or_else(|| ExecProfile::new(self.time_domain()))
    }

    /// Committed transactions per simulated second (simulator runs only).
    pub fn throughput_tx_per_sec(&self) -> Option<f64> {
        self.sim.as_ref().map(|r| r.throughput_tx_per_sec())
    }

    /// Panics if a conservation invariant was violated — the harness's
    /// correctness gate.
    pub fn assert_invariants(&self) {
        if let Some(violation) = &self.invariant_violation {
            panic!(
                "{} on {} ({}, {} tasklets): {violation}",
                self.spec.workload, self.executor, self.spec.kind, self.spec.tasklets
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_names_roundtrip() {
        for w in Workload::ALL {
            assert_eq!(Workload::parse(w.name()), Some(w));
            assert!(!w.figure().is_empty());
        }
        assert_eq!(Workload::parse("nope"), None);
    }

    #[test]
    fn labyrinth_is_excluded_from_wram_metadata() {
        assert!(!Workload::LabyrinthL.supports_wram_metadata());
        assert!(Workload::ArrayA.supports_wram_metadata());
    }

    #[test]
    fn read_strategy_and_burst_cap_thread_into_the_stm_config() {
        let spec = RunSpec::new(Workload::ArrayA, StmKind::TinyEtlWb, MetadataPlacement::Mram, 4);
        assert_eq!(spec.stm_config().read_strategy, ReadStrategy::Batched);
        assert_eq!(spec.stm_config().max_burst_words, pim_stm::config::DEFAULT_BURST_WORDS);
        let spec = spec.with_read_strategy(ReadStrategy::WordWise).with_max_burst_words(8);
        assert_eq!(spec.stm_config().read_strategy, ReadStrategy::WordWise);
        assert_eq!(spec.stm_config().max_burst_words, 8);
        assert_eq!(spec.stm_config().lock_order, LockOrder::AddressSorted, "default");
        let spec = spec.with_lock_order(LockOrder::RecordOrder);
        assert_eq!(spec.stm_config().lock_order, LockOrder::RecordOrder);
    }

    #[test]
    fn record_words_override_reaches_the_array_config() {
        let spec = RunSpec::new(Workload::ArrayA, StmKind::Norec, MetadataPlacement::Mram, 2);
        assert_eq!(spec.array_config().record_words, 20, "workload A defaults to record reads");
        let original = spec.with_record_words(1);
        assert_eq!(
            original.array_config().record_words,
            1,
            "the paper's scattered single-entry reads stay reachable"
        );
        assert_eq!(original.array_config().read_records_per_tx(), 100);
    }

    #[test]
    fn retry_policy_threads_into_the_stm_config() {
        let spec = RunSpec::new(Workload::ArrayB, StmKind::Norec, MetadataPlacement::Mram, 2);
        assert_eq!(spec.stm_config().retry, RetryPolicy::Exponential, "legacy default");
        let adaptive = spec.with_retry(RetryPolicy::Adaptive);
        assert_eq!(adaptive.stm_config().retry, RetryPolicy::Adaptive);
        // An adaptive-retry cell runs end to end and conserves invariants —
        // the new sweepable axis is not just a recorded field.
        let report = adaptive.with_scale(0.05).run_on(Executor::Simulator);
        report.assert_invariants();
        assert!(report.commits > 0);
    }

    #[test]
    fn array_a_wram_config_keeps_lock_table_in_mram() {
        let spec = RunSpec::new(Workload::ArrayA, StmKind::TinyEtlWb, MetadataPlacement::Wram, 4);
        let cfg = spec.stm_config();
        assert_eq!(cfg.metadata_tier(), pim_sim::Tier::Wram);
        assert_eq!(cfg.lock_table_tier(), pim_sim::Tier::Mram);
    }

    #[test]
    fn specs_run_end_to_end_for_a_sample_of_the_design_space() {
        let samples = [
            (Workload::ArrayB, StmKind::Norec, MetadataPlacement::Mram),
            (Workload::ListHc, StmKind::VrEtlWb, MetadataPlacement::Wram),
            (Workload::KmeansHc, StmKind::TinyCtlWb, MetadataPlacement::Wram),
            (Workload::LabyrinthS, StmKind::TinyEtlWt, MetadataPlacement::Mram),
        ];
        for (workload, kind, placement) in samples {
            let report = RunSpec::new(workload, kind, placement, 4).with_scale(0.1).run();
            assert!(report.total_commits() > 0, "{workload}/{kind} committed nothing");
            assert!(report.throughput_tx_per_sec() > 0.0);
            assert!(report.makespan_cycles > 0);
        }
    }

    #[test]
    fn run_on_simulator_carries_the_cycle_report_and_invariants() {
        let spec = RunSpec::new(Workload::ArrayB, StmKind::Norec, MetadataPlacement::Mram, 4)
            .with_scale(0.1);
        let report = spec.run_on(Executor::Simulator);
        assert_eq!(report.executor, Executor::Simulator);
        assert!(report.sim.is_some());
        assert!(report.commits > 0);
        report.assert_invariants();
        assert!(report.throughput_tx_per_sec().unwrap() > 0.0);
        // The unified profile mirrors the cycle report, in the cycle domain.
        assert_eq!(report.time_domain(), TimeDomain::Cycles);
        assert_eq!(report.profiles.len(), 4);
        let profile = report.merged_profile();
        assert_eq!(profile.commits(), report.commits);
        assert_eq!(profile.aborts(), report.aborts);
        assert_eq!(profile.histogram_total(), report.aborts);
        let sim = report.sim.as_ref().unwrap();
        assert_eq!(profile.phases().total(), sim.breakdown().total());
        assert_eq!(profile.dma_setups(), sim.total_mram_dma_setups());
    }

    /// The online tuner converges on a contended NOrec run: its decisions
    /// surface as cycle-stamped simulator events, the drained-abort rule
    /// flips the retry knob off the exponential default, and the whole run
    /// stays deterministic and invariant-clean.
    #[test]
    fn tuner_decisions_surface_as_cycle_stamped_events_and_converge() {
        let spec = RunSpec::new(Workload::ArrayB, StmKind::Norec, MetadataPlacement::Mram, 8)
            .with_scale(0.1)
            .with_tune(pim_stm::TunePolicy::Windowed { window: 8 });
        let report = spec.run_on(Executor::Simulator);
        report.assert_invariants();
        let profile = report.merged_profile();
        assert!(profile.core.tune_windows > 0, "windows must complete on a contended run");
        assert!(profile.core.tune_switches > 0, "the defaults must not already be optimal");
        let sim = report.sim.as_ref().unwrap();
        let events: Vec<pim_sim::TuneEvent> =
            sim.tasklet_stats.iter().flat_map(|s| s.tune_events.iter().copied()).collect();
        assert_eq!(events.len() as u64, profile.core.tune_switches);
        // Every decision is stamped with the simulated cycle it was taken
        // at, after the run began and before it ended.
        for event in &events {
            assert!(event.at_cycles > 0);
            assert!(event.at_cycles <= sim.makespan_cycles);
            assert_ne!(event.from, event.to, "a switch must change the knob");
        }
        // Per tasklet, decisions arrive in simulated-time order.
        for stats in &sim.tasklet_stats {
            for pair in stats.tune_events.windows(2) {
                assert!(pair[0].at_cycles <= pair[1].at_cycles);
            }
        }
        // NOrec's aborts drain through validation failures, so the retry
        // rule (knob 0) must move some tasklet off the exponential default
        // (1) onto adaptive back-off (2).
        assert!(
            events.iter().any(|e| e.knob == 0 && e.to == 2),
            "contended NOrec must tune retry toward adaptive: {events:?}"
        );
        // Convergence: tasklets settle instead of thrashing — strictly
        // fewer switches than evaluated windows.
        assert!(
            profile.core.tune_switches < profile.core.tune_windows,
            "{} switches over {} windows is thrash, not convergence",
            profile.core.tune_switches,
            profile.core.tune_windows
        );
        // Determinism: the tuner feeds from the deterministic abort
        // histogram, so a rerun reproduces every decision bit for bit.
        let rerun = spec.run_on(Executor::Simulator);
        assert_eq!(rerun.fingerprint, report.fingerprint);
        let rerun_events: Vec<pim_sim::TuneEvent> = rerun
            .sim
            .as_ref()
            .unwrap()
            .tasklet_stats
            .iter()
            .flat_map(|s| s.tune_events.iter().copied())
            .collect();
        assert_eq!(rerun_events, events);
    }

    #[test]
    fn run_on_threaded_checks_the_same_invariants() {
        let spec = RunSpec::new(Workload::KmeansHc, StmKind::TinyEtlWb, MetadataPlacement::Wram, 4)
            .with_scale(0.1);
        let report = spec.run_on(Executor::Threaded);
        assert_eq!(report.executor, Executor::Threaded);
        assert!(report.sim.is_none());
        assert!(report.throughput_tx_per_sec().is_none());
        report.assert_invariants();
        // ...and carries the same profile schema, in wall-clock nanoseconds.
        assert_eq!(report.time_domain(), TimeDomain::WallNanos);
        assert_eq!(report.profiles.len(), 4);
        let profile = report.merged_profile();
        assert_eq!(profile.time_domain, TimeDomain::WallNanos);
        assert_eq!(profile.commits(), report.commits);
        assert_eq!(profile.histogram_total(), report.aborts);
        assert!(profile.total_time() > 0, "threads must accrue wall-clock time");
        assert!(profile.dma_words() > 0, "MRAM-addressed traffic must be counted");
    }

    #[test]
    #[should_panic(expected = "cannot keep its STM metadata in WRAM")]
    fn labyrinth_with_wram_metadata_panics() {
        let _ = RunSpec::new(Workload::LabyrinthS, StmKind::Norec, MetadataPlacement::Wram, 2)
            .with_scale(0.05)
            .run();
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_seed() {
        let spec = RunSpec::new(Workload::ArrayB, StmKind::TinyEtlWb, MetadataPlacement::Mram, 4)
            .with_scale(0.2);
        let a = spec.run();
        let b = spec.run();
        assert_eq!(a.makespan_cycles, b.makespan_cycles);
        assert_eq!(a.total_commits(), b.total_commits());
        assert_eq!(a.total_aborts(), b.total_aborts());
    }

    #[test]
    fn commutative_workloads_fingerprint_identically_across_executors() {
        let spec = RunSpec::new(Workload::ArrayB, StmKind::Norec, MetadataPlacement::Mram, 3)
            .with_scale(0.1);
        let sim = spec.run_on(Executor::Simulator);
        let threaded = spec.run_on(Executor::Threaded);
        assert!(sim.deterministic_final_state);
        assert_eq!(sim.fingerprint, threaded.fingerprint);
    }
}
