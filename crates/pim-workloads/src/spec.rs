//! Run specifications: one place that knows how to set up and execute every
//! workload of the paper's evaluation on the simulated DPU.

use pim_sim::{Dpu, DpuConfig, DpuRunReport, Scheduler};
use pim_stm::{MetadataPlacement, StmConfig, StmKind, StmShared};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::array_bench::{self, ArrayBenchConfig};
use crate::kmeans::{self, KmeansConfig};
use crate::labyrinth::{self, LabyrinthConfig};
use crate::linked_list::{self, LinkedListConfig};

/// The evaluation workloads of §4.1/§4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Workload {
    /// ArrayBench workload A (large read phase, low contention).
    ArrayA,
    /// ArrayBench workload B (tiny highly contended transactions).
    ArrayB,
    /// Linked list, low contention (90 % `contains`).
    ListLc,
    /// Linked list, high contention (50 % `contains`).
    ListHc,
    /// KMeans, low contention (k = 15).
    KmeansLc,
    /// KMeans, high contention (k = 2).
    KmeansHc,
    /// Labyrinth on the 16×16×3 grid.
    LabyrinthS,
    /// Labyrinth on the 32×32×3 grid.
    LabyrinthM,
    /// Labyrinth on the 128×128×3 grid.
    LabyrinthL,
}

impl Workload {
    /// All workloads, in the order the paper presents them.
    pub const ALL: [Workload; 9] = [
        Workload::ArrayA,
        Workload::ArrayB,
        Workload::ListLc,
        Workload::ListHc,
        Workload::KmeansLc,
        Workload::KmeansHc,
        Workload::LabyrinthS,
        Workload::LabyrinthM,
        Workload::LabyrinthL,
    ];

    /// The workloads used for the single-DPU design-space study (Fig. 4–6).
    pub const FIGURE_4_5: [Workload; 8] = [
        Workload::ArrayA,
        Workload::ArrayB,
        Workload::ListLc,
        Workload::ListHc,
        Workload::KmeansLc,
        Workload::KmeansHc,
        Workload::LabyrinthS,
        Workload::LabyrinthL,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::ArrayA => "array-a",
            Workload::ArrayB => "array-b",
            Workload::ListLc => "list-lc",
            Workload::ListHc => "list-hc",
            Workload::KmeansLc => "kmeans-lc",
            Workload::KmeansHc => "kmeans-hc",
            Workload::LabyrinthS => "labyrinth-s",
            Workload::LabyrinthM => "labyrinth-m",
            Workload::LabyrinthL => "labyrinth-l",
        }
    }

    /// Parses a CLI name (case-insensitive).
    pub fn parse(name: &str) -> Option<Workload> {
        let canon = name.to_ascii_lowercase();
        Workload::ALL.into_iter().find(|w| w.name() == canon)
    }

    /// Which figure panel of the paper this workload appears in.
    pub fn figure(self) -> &'static str {
        match self {
            Workload::ArrayA => "Fig. 4a/e/i",
            Workload::ArrayB => "Fig. 4b/f/j",
            Workload::ListLc => "Fig. 4c/g/k",
            Workload::ListHc => "Fig. 4d/h/l",
            Workload::KmeansLc => "Fig. 5a/e/i",
            Workload::KmeansHc => "Fig. 5b/f/j",
            Workload::LabyrinthS => "Fig. 5c/g/k",
            Workload::LabyrinthM => "Fig. 7b (multi-DPU)",
            Workload::LabyrinthL => "Fig. 5d/h/l",
        }
    }

    /// Whether the STM metadata of this workload fits in WRAM (the paper
    /// excludes Labyrinth from the WRAM study because its read/write sets do
    /// not fit).
    pub fn supports_wram_metadata(self) -> bool {
        !matches!(self, Workload::LabyrinthS | Workload::LabyrinthM | Workload::LabyrinthL)
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully specified single-DPU run: workload × STM design × metadata
/// placement × tasklet count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Which workload to run.
    pub workload: Workload,
    /// Which STM design to use.
    pub kind: StmKind,
    /// Where the STM metadata lives.
    pub placement: MetadataPlacement,
    /// Number of tasklets (1–24; the paper sweeps 1–11).
    pub tasklets: usize,
    /// PRNG seed (runs are deterministic given the same seed).
    pub seed: u64,
    /// Scale factor applied to the workload's operation counts; < 1.0 makes
    /// runs proportionally shorter (used by the Criterion benches).
    pub scale: f64,
}

impl RunSpec {
    /// Creates a run specification with the default seed and full scale.
    pub fn new(
        workload: Workload,
        kind: StmKind,
        placement: MetadataPlacement,
        tasklets: usize,
    ) -> Self {
        RunSpec { workload, kind, placement, tasklets, seed: 42, scale: 1.0 }
    }

    /// Overrides the operation-count scale factor.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Overrides the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The STM configuration (log capacities, lock-table size and placement)
    /// appropriate for this workload, mirroring the sizing discussion in the
    /// paper.
    pub fn stm_config(&self) -> StmConfig {
        let base = StmConfig::new(self.kind, self.placement);
        match self.workload {
            Workload::ArrayA => {
                let cfg = ArrayBenchConfig::workload_a();
                // The paper sizes the ORec lock table to the array and notes
                // that it does not fit in WRAM for this workload, so the
                // table stays in MRAM even when the rest of the metadata is
                // promoted to WRAM.
                let stm = base
                    .with_read_set_capacity(cfg.read_set_capacity())
                    .with_write_set_capacity(cfg.write_set_capacity())
                    .with_lock_table_entries(16 * 1024);
                if self.placement == MetadataPlacement::Wram {
                    stm.with_lock_table_placement(MetadataPlacement::Mram)
                } else {
                    stm
                }
            }
            Workload::ArrayB => {
                let cfg = ArrayBenchConfig::workload_b();
                base.with_read_set_capacity(cfg.read_set_capacity())
                    .with_write_set_capacity(cfg.write_set_capacity())
                    .with_lock_table_entries(1024)
            }
            Workload::ListLc | Workload::ListHc => {
                let cfg = self.list_config();
                base.with_read_set_capacity(cfg.read_set_capacity())
                    .with_write_set_capacity(cfg.write_set_capacity())
                    .with_lock_table_entries(1024)
            }
            Workload::KmeansLc | Workload::KmeansHc => {
                let cfg = self.kmeans_config();
                base.with_read_set_capacity(cfg.read_set_capacity())
                    .with_write_set_capacity(cfg.write_set_capacity())
                    .with_lock_table_entries(1024)
            }
            Workload::LabyrinthS | Workload::LabyrinthM | Workload::LabyrinthL => {
                let cfg = self.labyrinth_config();
                base.with_read_set_capacity(cfg.read_set_capacity())
                    .with_write_set_capacity(cfg.write_set_capacity())
                    .with_lock_table_entries(1024)
            }
        }
    }

    fn array_config(&self) -> ArrayBenchConfig {
        match self.workload {
            Workload::ArrayA => ArrayBenchConfig::workload_a().scaled(self.scale),
            Workload::ArrayB => ArrayBenchConfig::workload_b().scaled(self.scale),
            _ => unreachable!("not an ArrayBench workload"),
        }
    }

    fn list_config(&self) -> LinkedListConfig {
        match self.workload {
            Workload::ListLc => LinkedListConfig::low_contention().scaled(self.scale),
            Workload::ListHc => LinkedListConfig::high_contention().scaled(self.scale),
            _ => unreachable!("not a linked-list workload"),
        }
    }

    fn kmeans_config(&self) -> KmeansConfig {
        match self.workload {
            Workload::KmeansLc => KmeansConfig::low_contention().scaled(self.scale),
            Workload::KmeansHc => KmeansConfig::high_contention().scaled(self.scale),
            _ => unreachable!("not a KMeans workload"),
        }
    }

    fn labyrinth_config(&self) -> LabyrinthConfig {
        match self.workload {
            Workload::LabyrinthS => LabyrinthConfig::small().scaled(self.scale),
            Workload::LabyrinthM => LabyrinthConfig::medium().scaled(self.scale),
            Workload::LabyrinthL => LabyrinthConfig::large().scaled(self.scale),
            _ => unreachable!("not a Labyrinth workload"),
        }
    }

    /// Builds the DPU, STM instance and tasklet programs, runs the
    /// deterministic scheduler and returns the report (throughput, abort
    /// rate, phase breakdown).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is infeasible — e.g. WRAM metadata
    /// placement for Labyrinth, whose transaction logs exceed WRAM capacity
    /// (the paper excludes this combination for the same reason).
    pub fn run(&self) -> DpuRunReport {
        assert!(
            self.placement == MetadataPlacement::Mram || self.workload.supports_wram_metadata(),
            "{} cannot keep its STM metadata in WRAM (transaction logs exceed 64 KB)",
            self.workload
        );
        let mut dpu = Dpu::new(DpuConfig::default());
        let shared = StmShared::allocate(&mut dpu, self.stm_config())
            .expect("STM metadata must fit in the configured tier");
        let programs = match self.workload {
            Workload::ArrayA | Workload::ArrayB => {
                array_bench::build(&mut dpu, &shared, self.array_config(), self.tasklets, self.seed)
                    .1
            }
            Workload::ListLc | Workload::ListHc => {
                linked_list::build(&mut dpu, &shared, self.list_config(), self.tasklets, self.seed)
                    .1
            }
            Workload::KmeansLc | Workload::KmeansHc => {
                kmeans::build(&mut dpu, &shared, self.kmeans_config(), self.tasklets, self.seed).1
            }
            Workload::LabyrinthS | Workload::LabyrinthM | Workload::LabyrinthL => {
                labyrinth::build(
                    &mut dpu,
                    &shared,
                    self.labyrinth_config(),
                    self.tasklets,
                    self.seed,
                )
                .1
            }
        };
        Scheduler::new().run(&mut dpu, programs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_names_roundtrip() {
        for w in Workload::ALL {
            assert_eq!(Workload::parse(w.name()), Some(w));
            assert!(!w.figure().is_empty());
        }
        assert_eq!(Workload::parse("nope"), None);
    }

    #[test]
    fn labyrinth_is_excluded_from_wram_metadata() {
        assert!(!Workload::LabyrinthL.supports_wram_metadata());
        assert!(Workload::ArrayA.supports_wram_metadata());
    }

    #[test]
    fn array_a_wram_config_keeps_lock_table_in_mram() {
        let spec = RunSpec::new(Workload::ArrayA, StmKind::TinyEtlWb, MetadataPlacement::Wram, 4);
        let cfg = spec.stm_config();
        assert_eq!(cfg.metadata_tier(), pim_sim::Tier::Wram);
        assert_eq!(cfg.lock_table_tier(), pim_sim::Tier::Mram);
    }

    #[test]
    fn specs_run_end_to_end_for_a_sample_of_the_design_space() {
        let samples = [
            (Workload::ArrayB, StmKind::Norec, MetadataPlacement::Mram),
            (Workload::ListHc, StmKind::VrEtlWb, MetadataPlacement::Wram),
            (Workload::KmeansHc, StmKind::TinyCtlWb, MetadataPlacement::Wram),
            (Workload::LabyrinthS, StmKind::TinyEtlWt, MetadataPlacement::Mram),
        ];
        for (workload, kind, placement) in samples {
            let report = RunSpec::new(workload, kind, placement, 4).with_scale(0.1).run();
            assert!(report.total_commits() > 0, "{workload}/{kind} committed nothing");
            assert!(report.throughput_tx_per_sec() > 0.0);
            assert!(report.makespan_cycles > 0);
        }
    }

    #[test]
    #[should_panic(expected = "cannot keep its STM metadata in WRAM")]
    fn labyrinth_with_wram_metadata_panics() {
        let _ = RunSpec::new(Workload::LabyrinthS, StmKind::Norec, MetadataPlacement::Wram, 2)
            .with_scale(0.05)
            .run();
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_seed() {
        let spec = RunSpec::new(Workload::ArrayB, StmKind::TinyEtlWb, MetadataPlacement::Mram, 4)
            .with_scale(0.2);
        let a = spec.run();
        let b = spec.run();
        assert_eq!(a.makespan_cycles, b.makespan_cycles);
        assert_eq!(a.total_commits(), b.total_commits());
        assert_eq!(a.total_aborts(), b.total_aborts());
    }
}
