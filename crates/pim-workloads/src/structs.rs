//! STM-backed service structures: a transactional open-addressed hashmap
//! ([`TxHashMap`]) and a bounded MPMC ring queue ([`TxQueue`]).
//!
//! These are the data structures the `pim-service` traffic generator serves
//! get/put/transfer request mixes against. Both are *handles* — plain `Copy`
//! structs holding [`TVar`]/[`TArray`] addresses into DPU memory — so the
//! same instance is shared by every tasklet and both executors, exactly like
//! the typed variables they are built from. All operations go through
//! [`TxOps`], so isolation, rollback and conflict detection come from
//! whatever STM design the engine is composed with; nothing here knows which.
//!
//! Design notes:
//!
//! * The hashmap is open-addressed with linear probing over a power-of-two
//!   table. A slot's *tag* word stores `key + 1` (0 = empty), so key 0 is a
//!   valid key and emptiness needs no separate bitmap. There is **no
//!   remove**: service mixes are get/put/transfer, and tombstone-free tables
//!   keep probe chains stable under concurrency. Occupancy is tracked in a
//!   [`TVar`] so `len` is transactional and insert-full detection is exact.
//! * The queue is a classic head/tail ring. Under STM the head and tail
//!   counters are ordinary transactional words: push/push contention on
//!   `tail` (and pop/pop on `head`) serialises through conflicts rather than
//!   CAS loops, and a composed design's contention-management policy applies
//!   unchanged.
//!
//! Capacity-exceeded outcomes are *values*, not aborts: a full map returns
//! [`MapFull`], a full/empty queue returns `false`/`None`. Retrying a full
//! structure cannot succeed, so turning it into an [`Abort`] would spin the
//! retry loop forever.

use pim_sim::{AllocError, Tier};
use pim_stm::shared::MetadataAllocator;
use pim_stm::var::{alloc_array, alloc_var, peek_var, poke_var, TArray, TVar, WordAccess};
use pim_stm::{Abort, TxOps};

/// Returned by [`TxHashMap::put`]/[`TxHashMap::transfer`] when the table has
/// no free slot for a new key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapFull;

impl std::fmt::Display for MapFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transactional hashmap is full")
    }
}

/// A transactional open-addressed hashmap from `u64` keys to `u64` values.
///
/// See the [module documentation](self) for the slot layout and the
/// no-remove rationale.
#[derive(Debug, Clone, Copy)]
pub struct TxHashMap {
    /// Per-slot tag words: `key + 1`, or 0 for an empty slot.
    tags: TArray<u64>,
    /// Per-slot value words, parallel to `tags`.
    values: TArray<u64>,
    /// Number of occupied slots.
    occupancy: TVar<u64>,
    /// Table capacity; always a power of two.
    capacity: u32,
}

impl TxHashMap {
    /// Allocates an empty table for at least `capacity` keys in `tier`
    /// (rounded up to a power of two, minimum 2).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the tier cannot hold the table.
    pub fn allocate<A: MetadataAllocator + ?Sized>(
        alloc: &mut A,
        tier: Tier,
        capacity: u32,
    ) -> Result<Self, AllocError> {
        let capacity = capacity.max(2).next_power_of_two();
        Ok(TxHashMap {
            tags: alloc_array(alloc, tier, capacity)?,
            values: alloc_array(alloc, tier, capacity)?,
            occupancy: alloc_var(alloc, tier)?,
            capacity,
        })
    }

    /// The table's slot count (≥ the requested capacity).
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Home slot of `key` (SplitMix-style mix, masked to the table size).
    fn home_slot(&self, key: u64) -> u32 {
        let mut h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        (h as u32) & (self.capacity - 1)
    }

    /// Probe sequence starting at `key`'s home slot, wrapping once around.
    fn probes(&self, key: u64) -> impl Iterator<Item = u32> {
        let home = self.home_slot(key);
        let cap = self.capacity;
        (0..cap).map(move |i| (home + i) & (cap - 1))
    }

    /// Transactional lookup.
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`] from the underlying STM; bubble it up with `?`.
    pub fn get<O: TxOps>(&self, tx: &mut O, key: u64) -> Result<Option<u64>, Abort> {
        for slot in self.probes(key) {
            let tag = tx.get(self.tags.at(slot))?;
            if tag == 0 {
                return Ok(None);
            }
            if tag == key.wrapping_add(1) {
                return Ok(Some(tx.get(self.values.at(slot))?));
            }
        }
        Ok(None)
    }

    /// Transactional insert-or-update. Returns the previous value for an
    /// update, `None` for a fresh insert, or [`MapFull`] when no slot is
    /// free.
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`] from the underlying STM; bubble it up with `?`.
    pub fn put<O: TxOps>(
        &self,
        tx: &mut O,
        key: u64,
        value: u64,
    ) -> Result<Result<Option<u64>, MapFull>, Abort> {
        for slot in self.probes(key) {
            let tag = tx.get(self.tags.at(slot))?;
            if tag == 0 {
                tx.set(self.tags.at(slot), key.wrapping_add(1))?;
                tx.set(self.values.at(slot), value)?;
                let n = tx.get(self.occupancy)?;
                tx.set(self.occupancy, n + 1)?;
                return Ok(Ok(None));
            }
            if tag == key.wrapping_add(1) {
                let previous = tx.get(self.values.at(slot))?;
                tx.set(self.values.at(slot), value)?;
                return Ok(Ok(Some(previous)));
            }
        }
        Ok(Err(MapFull))
    }

    /// Transactionally moves `amount` from `from`'s value to `to`'s value,
    /// treating a missing key as balance 0 (created on demand). Returns
    /// `Ok(false)` — without touching anything — when `from`'s balance is
    /// insufficient, and [`MapFull`] when `to` needs a slot the table cannot
    /// provide.
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`] from the underlying STM; bubble it up with `?`.
    pub fn transfer<O: TxOps>(
        &self,
        tx: &mut O,
        from: u64,
        to: u64,
        amount: u64,
    ) -> Result<Result<bool, MapFull>, Abort> {
        if from == to {
            // A self-transfer only has to validate the balance.
            let balance = self.get(tx, from)?.unwrap_or(0);
            return Ok(Ok(balance >= amount));
        }
        let balance = self.get(tx, from)?.unwrap_or(0);
        if balance < amount {
            return Ok(Ok(false));
        }
        let credit = self.get(tx, to)?.unwrap_or(0);
        // Credit first: if `to` needs a fresh slot and the table is full the
        // transaction leaves no debit behind (and on abort the STM rolls
        // everything back anyway).
        if self.put(tx, to, credit + amount)?.is_err() {
            return Ok(Err(MapFull));
        }
        match self.put(tx, from, balance - amount)? {
            Ok(_) => Ok(Ok(true)),
            Err(full) => Ok(Err(full)),
        }
    }

    /// Transactional count of occupied slots.
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`] from the underlying STM; bubble it up with `?`.
    pub fn len<O: TxOps>(&self, tx: &mut O) -> Result<u64, Abort> {
        tx.get(self.occupancy)
    }

    /// Host-side (non-transactional) lookup through direct word access —
    /// for orchestration code inspecting a quiesced DPU between rounds
    /// (e.g. shard migration in `pim-service`). Never call this while
    /// tasklets are running transactions against the table.
    pub fn host_get<M: WordAccess + ?Sized>(&self, mem: &M, key: u64) -> Option<u64> {
        for slot in self.probes(key) {
            let tag = peek_var(mem, self.tags.at(slot));
            if tag == 0 {
                return None;
            }
            if tag == key.wrapping_add(1) {
                return Some(peek_var(mem, self.values.at(slot)));
            }
        }
        None
    }

    /// Host-side (non-transactional) insert-or-update, mirroring
    /// [`TxHashMap::put`]. Same quiescence caveat as [`TxHashMap::host_get`].
    pub fn host_put<M: WordAccess + ?Sized>(
        &self,
        mem: &mut M,
        key: u64,
        value: u64,
    ) -> Result<Option<u64>, MapFull> {
        for slot in self.probes(key) {
            let tag = peek_var(mem, self.tags.at(slot));
            if tag == 0 {
                poke_var(mem, self.tags.at(slot), key.wrapping_add(1));
                poke_var(mem, self.values.at(slot), value);
                let n = peek_var(mem, self.occupancy);
                poke_var(mem, self.occupancy, n + 1);
                return Ok(None);
            }
            if tag == key.wrapping_add(1) {
                let previous = peek_var(mem, self.values.at(slot));
                poke_var(mem, self.values.at(slot), value);
                return Ok(Some(previous));
            }
        }
        Err(MapFull)
    }
}

/// A transactional bounded MPMC FIFO queue of `u64` values.
#[derive(Debug, Clone, Copy)]
pub struct TxQueue {
    /// Pop cursor (monotonically increasing; slot = `head % capacity`).
    head: TVar<u64>,
    /// Push cursor (monotonically increasing).
    tail: TVar<u64>,
    /// Ring storage.
    slots: TArray<u64>,
    /// Ring capacity.
    capacity: u32,
}

impl TxQueue {
    /// Allocates an empty queue of `capacity` slots (minimum 1) in `tier`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the tier cannot hold the ring.
    pub fn allocate<A: MetadataAllocator + ?Sized>(
        alloc: &mut A,
        tier: Tier,
        capacity: u32,
    ) -> Result<Self, AllocError> {
        let capacity = capacity.max(1);
        Ok(TxQueue {
            head: alloc_var(alloc, tier)?,
            tail: alloc_var(alloc, tier)?,
            slots: alloc_array(alloc, tier, capacity)?,
            capacity,
        })
    }

    /// The ring's slot count.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Transactional push; returns `false` (changing nothing) when full.
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`] from the underlying STM; bubble it up with `?`.
    pub fn push<O: TxOps>(&self, tx: &mut O, value: u64) -> Result<bool, Abort> {
        let head = tx.get(self.head)?;
        let tail = tx.get(self.tail)?;
        if tail - head >= u64::from(self.capacity) {
            return Ok(false);
        }
        tx.set(self.slots.at((tail % u64::from(self.capacity)) as u32), value)?;
        tx.set(self.tail, tail + 1)?;
        Ok(true)
    }

    /// Transactional pop; returns `None` when empty.
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`] from the underlying STM; bubble it up with `?`.
    pub fn pop<O: TxOps>(&self, tx: &mut O) -> Result<Option<u64>, Abort> {
        let head = tx.get(self.head)?;
        let tail = tx.get(self.tail)?;
        if head == tail {
            return Ok(None);
        }
        let value = tx.get(self.slots.at((head % u64::from(self.capacity)) as u32))?;
        tx.set(self.head, head + 1)?;
        Ok(Some(value))
    }

    /// Transactional element count.
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`] from the underlying STM; bubble it up with `?`.
    pub fn len<O: TxOps>(&self, tx: &mut O) -> Result<u64, Abort> {
        let head = tx.get(self.head)?;
        let tail = tx.get(self.tail)?;
        Ok(tail - head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_stm::threaded::ThreadedDpu;
    use pim_stm::{MetadataPlacement, StmConfig, StmKind};

    fn dpu() -> ThreadedDpu {
        let cfg = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram)
            .with_lock_table_entries(256)
            .with_read_set_capacity(256)
            .with_write_set_capacity(128);
        ThreadedDpu::new(cfg).unwrap()
    }

    #[test]
    fn hashmap_put_get_roundtrip_including_key_zero() {
        let mut dpu = dpu();
        let map = TxHashMap::allocate(&mut dpu, Tier::Mram, 16).unwrap();
        dpu.run(1, |mut tx| {
            tx.transaction(|v| {
                assert_eq!(map.get(v, 0)?, None);
                assert_eq!(map.put(v, 0, 77)?, Ok(None));
                assert_eq!(map.put(v, 5, 55)?, Ok(None));
                assert_eq!(map.get(v, 0)?, Some(77));
                assert_eq!(map.put(v, 0, 78)?, Ok(Some(77)));
                assert_eq!(map.get(v, 0)?, Some(78));
                assert_eq!(map.len(v)?, 2);
                Ok(())
            });
        })
        .unwrap();
    }

    #[test]
    fn hashmap_full_is_a_value_not_an_abort() {
        let mut dpu = dpu();
        let map = TxHashMap::allocate(&mut dpu, Tier::Mram, 2).unwrap();
        assert_eq!(map.capacity(), 2);
        dpu.run(1, |mut tx| {
            tx.transaction(|v| {
                assert_eq!(map.put(v, 1, 1)?, Ok(None));
                assert_eq!(map.put(v, 2, 2)?, Ok(None));
                assert_eq!(map.put(v, 3, 3)?, Err(MapFull));
                // Updates of resident keys still succeed when full.
                assert_eq!(map.put(v, 1, 10)?, Ok(Some(1)));
                Ok(())
            });
        })
        .unwrap();
    }

    #[test]
    fn transfer_moves_balance_and_respects_funds() {
        let mut dpu = dpu();
        let map = TxHashMap::allocate(&mut dpu, Tier::Mram, 16).unwrap();
        dpu.run(1, |mut tx| {
            tx.transaction(|v| {
                map.put(v, 1, 100)?.unwrap();
                assert_eq!(map.transfer(v, 1, 2, 30)?, Ok(true));
                assert_eq!(map.get(v, 1)?, Some(70));
                assert_eq!(map.get(v, 2)?, Some(30));
                // Insufficient funds: nothing moves.
                assert_eq!(map.transfer(v, 2, 1, 31)?, Ok(false));
                assert_eq!(map.get(v, 2)?, Some(30));
                // Missing source key = balance 0.
                assert_eq!(map.transfer(v, 9, 1, 1)?, Ok(false));
                // Self-transfer is a funds check.
                assert_eq!(map.transfer(v, 1, 1, 70)?, Ok(true));
                assert_eq!(map.transfer(v, 1, 1, 71)?, Ok(false));
                Ok(())
            });
        })
        .unwrap();
    }

    #[test]
    fn queue_is_fifo_and_bounded() {
        let mut dpu = dpu();
        let queue = TxQueue::allocate(&mut dpu, Tier::Mram, 3).unwrap();
        dpu.run(1, |mut tx| {
            tx.transaction(|v| {
                assert_eq!(queue.pop(v)?, None);
                assert!(queue.push(v, 10)?);
                assert!(queue.push(v, 20)?);
                assert!(queue.push(v, 30)?);
                assert!(!queue.push(v, 40)?, "4th push into a 3-slot ring must report full");
                assert_eq!(queue.len(v)?, 3);
                assert_eq!(queue.pop(v)?, Some(10));
                assert!(queue.push(v, 40)?, "a freed slot is reusable");
                assert_eq!(queue.pop(v)?, Some(20));
                assert_eq!(queue.pop(v)?, Some(30));
                assert_eq!(queue.pop(v)?, Some(40));
                assert_eq!(queue.pop(v)?, None);
                Ok(())
            });
        })
        .unwrap();
    }
}
