//! Shared plumbing for workload tasklet programs.
//!
//! [`TxMachine`] used to be this crate's own copy of the begin / commit /
//! abort bookkeeping; it is now an alias of [`pim_stm::TxEngine`], so the
//! step-granular workload state machines and the closure-style executors run
//! the *same* retry/back-off/accounting core (see `pim_stm::engine`).
//!
//! A workload program calls [`TxMachine::begin`] when it starts (or retries)
//! a transaction, issues [`TxMachine::read`] / [`TxMachine::write`]
//! operations from its `step` function — or typed operations through
//! [`TxMachine::ops`] — and finishes with [`TxMachine::commit`]. When an
//! operation aborts, the program calls [`TxMachine::on_abort`] and rewinds
//! its own state to the beginning of the transaction body.

pub use pim_stm::engine::{EngineOps, TxCounters};
pub use pim_stm::TxEngine as TxMachine;

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{Dpu, DpuConfig, TaskletCtx, TaskletStats, Tier};
    use pim_stm::{algorithm_for, MetadataPlacement, StmConfig, StmKind, StmShared};

    #[test]
    fn machine_tracks_commits_and_aborts() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        let slot0 = shared.register_tasklet(&mut dpu, 0).unwrap();
        let slot1 = shared.register_tasklet(&mut dpu, 1).unwrap();
        let data = dpu.alloc(Tier::Mram, 1).unwrap();
        let alg = algorithm_for(StmKind::TinyEtlWb);
        let mut m0 = TxMachine::new(shared.clone(), slot0, alg);
        let mut m1 = TxMachine::new(shared, slot1, alg);
        let mut stats0 = TaskletStats::new();
        let mut stats1 = TaskletStats::new();

        // m0 commits a write.
        {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats0, 0, 2, 0);
            m0.begin(&mut ctx);
            m0.write(&mut ctx, data, 1).unwrap();
            m0.commit(&mut ctx).unwrap();
        }
        // m0 holds a lock, so m1's write aborts and is accounted.
        {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats0, 0, 2, 0);
            m0.begin(&mut ctx);
            m0.write(&mut ctx, data, 2).unwrap();
        }
        {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats1, 1, 2, 0);
            m1.begin(&mut ctx);
            assert!(m1.write(&mut ctx, data, 3).is_err());
            m1.on_abort(&mut ctx);
        }
        assert_eq!(m0.commits(), 1);
        assert_eq!(m1.aborts(), 1);
        assert_eq!(stats0.commits, 1);
        assert_eq!(stats1.aborts, 1);
        assert!(format!("{m1:?}").contains("aborts"));
    }

    #[test]
    fn machine_closure_transactions_share_the_retry_core() {
        // The same TxEngine that drives step-granular programs can run
        // closure transactions; counters accumulate across both styles.
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        let slot = shared.register_tasklet(&mut dpu, 0).unwrap();
        let data = dpu.alloc(Tier::Mram, 1).unwrap();
        let mut machine = TxMachine::for_shared(shared, slot);
        let mut stats = TaskletStats::new();
        for _ in 0..5 {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
            machine.transaction(&mut ctx, |tx| {
                let v = tx.read(data)?;
                tx.write(data, v + 1)?;
                Ok(())
            });
        }
        assert_eq!(machine.commits(), 5);
        assert_eq!(stats.commits, 5);
        assert_eq!(dpu.peek(data), 5);
    }
}
