//! Shared plumbing for workload tasklet programs: the [`TxMachine`] bundles
//! the STM algorithm, shared metadata and this tasklet's transaction
//! descriptor, and centralises the begin / commit / abort bookkeeping every
//! workload state machine needs.

use pim_sim::Addr;
use pim_stm::algorithm::backoff;
use pim_stm::{Abort, Platform, StmShared, TmAlgorithm, TxSlot};

/// Per-tasklet transactional machinery used by the workload state machines.
///
/// A workload program calls [`TxMachine::begin`] when it starts (or retries)
/// a transaction, issues [`TxMachine::read`] / [`TxMachine::write`]
/// operations from its `step` function, and finishes with
/// [`TxMachine::commit`]. When an operation aborts, the program calls
/// [`TxMachine::on_abort`] and rewinds its own state to the beginning of the
/// transaction body.
pub struct TxMachine {
    shared: StmShared,
    slot: TxSlot,
    alg: &'static dyn TmAlgorithm,
    commits: u64,
    aborts: u64,
}

impl TxMachine {
    /// Creates the machinery for one tasklet.
    pub fn new(shared: StmShared, slot: TxSlot, alg: &'static dyn TmAlgorithm) -> Self {
        TxMachine { shared, slot, alg, commits: 0, aborts: 0 }
    }

    /// Starts a transaction attempt (also used to restart after an abort).
    pub fn begin(&mut self, p: &mut dyn Platform) {
        p.begin_attempt();
        self.alg.begin(&self.shared, &mut self.slot, p);
    }

    /// Transactional read.
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`] from the underlying algorithm.
    pub fn read(&mut self, p: &mut dyn Platform, addr: Addr) -> Result<u64, Abort> {
        self.alg.read(&self.shared, &mut self.slot, p, addr)
    }

    /// Transactional write.
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`] from the underlying algorithm.
    pub fn write(&mut self, p: &mut dyn Platform, addr: Addr, value: u64) -> Result<(), Abort> {
        self.alg.write(&self.shared, &mut self.slot, p, addr, value)
    }

    /// Attempts to commit; on success the attempt is accounted as committed.
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`]; the caller must then call
    /// [`TxMachine::on_abort`] and restart the transaction body.
    pub fn commit(&mut self, p: &mut dyn Platform) -> Result<(), Abort> {
        self.alg.commit(&self.shared, &mut self.slot, p)?;
        p.commit_attempt();
        self.slot.note_commit();
        self.commits += 1;
        Ok(())
    }

    /// Explicitly abandons the current attempt (releasing locks and undoing
    /// exposed writes) without the algorithm having detected a conflict.
    /// The caller must still call [`TxMachine::on_abort`] afterwards.
    pub fn cancel(&mut self, p: &mut dyn Platform) {
        self.alg.cancel(&self.shared, &mut self.slot, p);
    }

    /// Accounts an aborted attempt (the cycles it consumed become wasted
    /// time) and applies bounded exponential back-off.
    pub fn on_abort(&mut self, p: &mut dyn Platform) {
        p.abort_attempt();
        self.slot.note_abort();
        self.aborts += 1;
        backoff(p, self.slot.consecutive_aborts());
    }

    /// Shared STM metadata handles.
    pub fn shared(&self) -> &StmShared {
        &self.shared
    }

    /// Transactions committed by this tasklet.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Attempts aborted by this tasklet.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }
}

impl std::fmt::Debug for TxMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxMachine")
            .field("kind", &self.alg.kind())
            .field("commits", &self.commits)
            .field("aborts", &self.aborts)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{Dpu, DpuConfig, TaskletCtx, TaskletStats, Tier};
    use pim_stm::{algorithm_for, MetadataPlacement, StmConfig, StmKind};

    #[test]
    fn machine_tracks_commits_and_aborts() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        let slot0 = shared.register_tasklet(&mut dpu, 0).unwrap();
        let slot1 = shared.register_tasklet(&mut dpu, 1).unwrap();
        let data = dpu.alloc(Tier::Mram, 1).unwrap();
        let alg = algorithm_for(StmKind::TinyEtlWb);
        let mut m0 = TxMachine::new(shared.clone(), slot0, alg);
        let mut m1 = TxMachine::new(shared, slot1, alg);
        let mut stats0 = TaskletStats::new();
        let mut stats1 = TaskletStats::new();

        // m0 commits a write.
        {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats0, 0, 2, 0);
            m0.begin(&mut ctx);
            m0.write(&mut ctx, data, 1).unwrap();
            m0.commit(&mut ctx).unwrap();
        }
        // m0 holds a lock, so m1's write aborts and is accounted.
        {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats0, 0, 2, 0);
            m0.begin(&mut ctx);
            m0.write(&mut ctx, data, 2).unwrap();
        }
        {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats1, 1, 2, 0);
            m1.begin(&mut ctx);
            assert!(m1.write(&mut ctx, data, 3).is_err());
            m1.on_abort(&mut ctx);
        }
        assert_eq!(m0.commits(), 1);
        assert_eq!(m1.aborts(), 1);
        assert_eq!(stats0.commits, 1);
        assert_eq!(stats1.aborts, 1);
        assert!(format!("{m1:?}").contains("aborts"));
    }
}
