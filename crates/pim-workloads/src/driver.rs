//! The cross-executor workload driver: one transaction body, every executor.
//!
//! # The `TxOps` path is the default
//!
//! Workload transaction logic in this crate is written **once**, against the
//! typed [`TxOps`] facade (`TVar`/`TArray`, `get`/`set`, records, raw DMA),
//! as a resumable [`TxBody`] state machine. The same body then runs on both
//! executors:
//!
//! * **Simulator** — [`SimTxRunner`] drives the body one operation per
//!   scheduler step (through [`TxMachine::ops`]), so the discrete-event
//!   scheduler interleaves individual transactional operations of concurrent
//!   tasklets — which is what makes conflicts, aborts and the paper's
//!   time-breakdown plots meaningful. The runner owns the begin / commit /
//!   abort-restart bookkeeping that each workload used to hand-roll.
//! * **Threaded executor** — [`run_tx_body`] loops the body to completion
//!   inside one [`pim_stm::threaded::TaskletTx::transaction`] closure; the
//!   shared retry core re-runs the body from [`TxBody::reset`] on abort.
//!
//! The word-based API ([`TxMachine::read`] / [`TxMachine::write`] on raw
//! addresses) remains available underneath as an escape hatch for code that
//! computes addresses dynamically, but new workloads should not need it:
//! pointer-chasing structures can wrap raw addresses in typed handles (see
//! `linked_list`).
//!
//! # Rules for body authors
//!
//! These restate the `TxOps` contract (see `pim_stm::var`) plus the step
//! discipline the simulator adds:
//!
//! * **Propagate aborts** — every operation returns `Result<_, Abort>`;
//!   bubble it up with `?`. Never swallow an `Abort`: the retry machinery
//!   must see it to roll back and restart the attempt.
//! * **No side effects** — a body may run (and be rewound) many times before
//!   it commits. Mutating captured state is only sound if
//!   [`TxBody::reset`] restores it; everything else (I/O, counters the
//!   harness reads) belongs *outside* the body, keyed on the committed
//!   result.
//! * **One operation per step** — [`TxBody::step`] should issue roughly one
//!   transactional operation (or one bounded block of non-transactional
//!   work) per call, so the simulator can interleave tasklets between
//!   operations.
//! * **Application-level restarts use [`TxOps::cancel`]** — when the body
//!   must give up on an attempt for its own reasons (not a detected
//!   conflict), return `Err(tx.cancel())`; fabricating an `Abort` without
//!   cancelling leaks locks and exposed stores.
//!
//! [`TxMachine`] used to be this crate's own copy of the begin / commit /
//! abort bookkeeping; it is an alias of [`pim_stm::TxEngine`], so the
//! step-granular runner and the closure-style executors share the *same*
//! retry/back-off/accounting core (see `pim_stm::engine`).

use pim_sim::{SimRng, TaskletCtx};
use pim_stm::threaded::TaskletTx;
use pim_stm::{Abort, TxOps};

pub use pim_stm::engine::{EngineOps, TxCounters};
pub use pim_stm::TxEngine as TxMachine;

/// What a [`TxBody`] step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyStep {
    /// The body has more operations to issue.
    Continue,
    /// The body just issued its last operation; the transaction can commit.
    Done,
}

/// A transaction body written once against [`TxOps`] and resumable one
/// operation at a time.
///
/// Implementations keep their own program counter so the simulator can
/// interleave other tasklets between operations; the threaded executor just
/// loops [`TxBody::step`] until [`BodyStep::Done`]. See the
/// [module documentation](self) for the authoring rules.
pub trait TxBody {
    /// Rewinds the body to the start of the transaction. Called before the
    /// first step of every attempt, including retries after an abort.
    fn reset(&mut self);

    /// Issues the next operation of the body.
    ///
    /// # Errors
    ///
    /// Propagates [`Abort`] from the transactional operations (or from
    /// [`TxOps::cancel`]); the caller rewinds via [`TxBody::reset`] and
    /// retries.
    fn step<O: TxOps>(&mut self, tx: &mut O) -> Result<BodyStep, Abort>;
}

/// Result of one [`SimTxRunner::step`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    /// The transaction is still executing (or restarting after an abort).
    InFlight,
    /// The transaction just committed; the body's outcome can be harvested.
    Committed,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunnerState {
    Begin,
    Step,
    Commit,
}

/// Drives a [`TxBody`] on the simulator, one operation per scheduler step,
/// with the begin / commit / abort-restart bookkeeping every workload
/// previously duplicated.
#[derive(Debug)]
pub struct SimTxRunner {
    machine: TxMachine,
    state: RunnerState,
}

impl SimTxRunner {
    /// Wraps a per-tasklet transaction machine.
    pub fn new(machine: TxMachine) -> Self {
        SimTxRunner { machine, state: RunnerState::Begin }
    }

    /// The underlying machine (for commit/abort tallies).
    pub fn machine(&self) -> &TxMachine {
        &self.machine
    }

    /// Mutable access to the underlying machine. Service drivers use this to
    /// harvest per-transaction latency stamps ([`TxMachine::take_stamps`])
    /// after each committed request.
    pub fn machine_mut(&mut self) -> &mut TxMachine {
        &mut self.machine
    }

    /// Advances the in-flight transaction by one scheduler step: begin, one
    /// body operation, or commit. Returns [`TxStatus::Committed`] on the
    /// step that commits; aborted attempts rewind transparently.
    pub fn step<B: TxBody>(&mut self, ctx: &mut TaskletCtx<'_>, body: &mut B) -> TxStatus {
        match self.state {
            RunnerState::Begin => {
                self.machine.begin(ctx);
                body.reset();
                self.state = RunnerState::Step;
                TxStatus::InFlight
            }
            RunnerState::Step => {
                match body.step(&mut self.machine.ops(ctx)) {
                    Ok(BodyStep::Continue) => {}
                    Ok(BodyStep::Done) => self.state = RunnerState::Commit,
                    Err(abort) => {
                        self.machine.on_abort(ctx, abort.reason);
                        self.state = RunnerState::Begin;
                    }
                }
                TxStatus::InFlight
            }
            RunnerState::Commit => match self.machine.commit(ctx) {
                Ok(()) => {
                    self.state = RunnerState::Begin;
                    TxStatus::Committed
                }
                Err(abort) => {
                    self.machine.on_abort(ctx, abort.reason);
                    self.state = RunnerState::Begin;
                    TxStatus::InFlight
                }
            },
        }
    }
}

/// Runs a [`TxBody`] to completion (retrying on abort) on the threaded
/// executor — the *same* body type [`SimTxRunner`] drives on the simulator.
pub fn run_tx_body<B: TxBody>(tasklet: &mut TaskletTx<'_>, body: &mut B) {
    tasklet.transaction(|tx| {
        body.reset();
        loop {
            if body.step(tx)? == BodyStep::Done {
                return Ok(());
            }
        }
    });
}

/// Derives tasklet `tasklet`'s private RNG stream for a run seeded with
/// `seed`.
///
/// Both executors use this, so a seeded workload draws identical per-tasklet
/// random sequences on the simulator and on real threads — the property the
/// cross-executor equivalence tests rely on. (The simulator's builders fork
/// streams sequentially from one parent; this reproduces the `tasklet`-th
/// fork without shared mutable state.)
pub fn tasklet_rng(seed: u64, tasklet: usize) -> SimRng {
    let mut parent = SimRng::new(seed);
    let mut stream = parent.fork(0);
    for t in 1..=tasklet {
        stream = parent.fork(t as u64);
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{Dpu, DpuConfig, TaskletStats, Tier};
    use pim_stm::var::TVar;
    use pim_stm::{algorithm_for, MetadataPlacement, StmConfig, StmKind, StmShared};

    #[test]
    fn machine_tracks_commits_and_aborts() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        let slot0 = shared.register_tasklet(&mut dpu, 0).unwrap();
        let slot1 = shared.register_tasklet(&mut dpu, 1).unwrap();
        let data = dpu.alloc(Tier::Mram, 1).unwrap();
        let alg = algorithm_for(StmKind::TinyEtlWb);
        let mut m0 = TxMachine::new(shared.clone(), slot0, alg);
        let mut m1 = TxMachine::new(shared, slot1, alg);
        let mut stats0 = TaskletStats::new();
        let mut stats1 = TaskletStats::new();

        // m0 commits a write.
        {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats0, 0, 2, 0);
            m0.begin(&mut ctx);
            m0.write(&mut ctx, data, 1).unwrap();
            m0.commit(&mut ctx).unwrap();
        }
        // m0 holds a lock, so m1's write aborts and is accounted.
        {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats0, 0, 2, 0);
            m0.begin(&mut ctx);
            m0.write(&mut ctx, data, 2).unwrap();
        }
        {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats1, 1, 2, 0);
            m1.begin(&mut ctx);
            let abort = m1.write(&mut ctx, data, 3).unwrap_err();
            m1.on_abort(&mut ctx, abort.reason);
        }
        assert_eq!(m0.commits(), 1);
        assert_eq!(m1.aborts(), 1);
        assert_eq!(stats0.commits, 1);
        assert_eq!(stats1.aborts, 1);
        assert!(format!("{m1:?}").contains("aborts"));
    }

    /// A minimal body: increment a counter in two steps (read, then write).
    struct IncrementBody {
        counter: TVar<u64>,
        observed: Option<u64>,
    }

    impl TxBody for IncrementBody {
        fn reset(&mut self) {
            self.observed = None;
        }

        fn step<O: TxOps>(&mut self, tx: &mut O) -> Result<BodyStep, Abort> {
            match self.observed {
                None => {
                    self.observed = Some(tx.get(self.counter)?);
                    Ok(BodyStep::Continue)
                }
                Some(value) => {
                    tx.set(self.counter, value + 1)?;
                    Ok(BodyStep::Done)
                }
            }
        }
    }

    #[test]
    fn sim_runner_steps_a_body_through_begin_ops_commit() {
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        let slot = shared.register_tasklet(&mut dpu, 0).unwrap();
        let counter: TVar<u64> = pim_stm::var::alloc_var(&mut dpu, Tier::Mram).unwrap();
        let mut runner = SimTxRunner::new(TxMachine::for_shared(shared, slot));
        let mut body = IncrementBody { counter, observed: None };
        let mut stats = TaskletStats::new();
        let mut steps = 0;
        loop {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
            steps += 1;
            if runner.step(&mut ctx, &mut body) == TxStatus::Committed {
                break;
            }
            assert!(steps < 16, "runner must reach commit");
        }
        // begin + two ops + commit, one scheduler step each.
        assert_eq!(steps, 4);
        assert_eq!(pim_stm::var::peek_var(&dpu, counter), 1);
        assert_eq!(runner.machine().commits(), 1);
    }

    #[test]
    fn the_same_body_runs_on_the_threaded_executor() {
        let cfg =
            StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram).with_lock_table_entries(64);
        let mut dpu = pim_stm::threaded::ThreadedDpu::new(cfg).unwrap();
        let counter: TVar<u64> = dpu.alloc_var(Tier::Mram).unwrap();
        let report = dpu
            .run(4, |mut tasklet| {
                let mut body = IncrementBody { counter, observed: None };
                for _ in 0..50 {
                    run_tx_body(&mut tasklet, &mut body);
                }
            })
            .unwrap();
        assert_eq!(dpu.peek_var(counter), 200, "increments lost under concurrency");
        assert_eq!(report.commits, 200);
    }

    #[test]
    fn tasklet_rng_matches_sequential_forks() {
        let mut parent = SimRng::new(99);
        for t in 0..4usize {
            let mut expected = parent.fork(t as u64);
            let mut derived = tasklet_rng(99, t);
            for _ in 0..8 {
                assert_eq!(derived.next_u64(), expected.next_u64(), "tasklet {t}");
            }
        }
    }
}
