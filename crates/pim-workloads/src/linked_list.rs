//! A sorted, transactional linked list (the concurrent data-structure
//! benchmark of §4.1).
//!
//! The list stores unique keys in ascending order. Every operation —
//! `contains`, `add`, `remove` — runs as one transaction that traverses the
//! list from the head and then, for updates, splices a node in or out. The
//! benchmark keeps the list size roughly constant by issuing the same number
//! of `add` and `remove` operations.
//!
//! Two contention levels are used in the paper: **LC** with 90 % `contains`
//! (read-only transactions) and **HC** with 50 % `contains`.
//!
//! The transaction logic lives in [`ListTxBody`], written once against
//! [`TxOps`] — nodes are pointer-addressed, so the body wraps the raw node
//! words in typed [`TVar`] handles — and driven by both executors (see
//! [`crate::driver`]).

use pim_sim::{Addr, Dpu, SimRng, StepStatus, TaskletCtx, TaskletProgram, Tier};
use pim_stm::shared::MetadataAllocator;
use pim_stm::threaded::{ThreadedDpu, ThreadedRunReport};
use pim_stm::var::{TVar, WordAccess};
use pim_stm::{algorithm_for, Abort, RunError, StmShared, TxOps};

use crate::driver::{run_tx_body, tasklet_rng, BodyStep, SimTxRunner, TxBody, TxMachine, TxStatus};

/// Null pointer encoding in `next` fields and the head word.
const NULL: u64 = 0;
/// Words per list node: `[key, next]`.
const NODE_WORDS: u32 = 2;

/// Parameters of a linked-list run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkedListConfig {
    /// Number of keys inserted before the benchmark starts.
    pub initial_size: u32,
    /// Operations each tasklet performs.
    pub ops_per_tasklet: u32,
    /// Fraction of operations that are `contains` (read-only).
    pub contains_fraction: f64,
    /// Range keys are drawn from (`1 ..= key_range`).
    pub key_range: u64,
}

impl LinkedListConfig {
    /// Low-contention workload of the paper: 90 % `contains`, 100 ops per
    /// tasklet, 10 initial elements.
    pub fn low_contention() -> Self {
        // A key range about twice the initial size keeps add/remove hit rates
        // balanced, so the list size stays roughly constant as the paper
        // requires.
        LinkedListConfig {
            initial_size: 10,
            ops_per_tasklet: 100,
            contains_fraction: 0.9,
            key_range: 20,
        }
    }

    /// High-contention workload of the paper: 50 % `contains`.
    pub fn high_contention() -> Self {
        LinkedListConfig { contains_fraction: 0.5, ..Self::low_contention() }
    }

    /// Scales the per-tasklet operation count, keeping at least one.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.ops_per_tasklet = ((self.ops_per_tasklet as f64 * factor).round() as u32).max(1);
        self
    }

    /// A read-set capacity large enough for full traversals of the largest
    /// list this run can produce.
    pub fn read_set_capacity(&self) -> u32 {
        // Each visited node costs up to two read-set entries (key and next)
        // plus the head pointer; the list can transiently grow by one node
        // per tasklet.
        ((self.initial_size + 64) * 2 + 16).next_power_of_two()
    }

    /// A write-set capacity large enough for any single operation.
    pub fn write_set_capacity(&self) -> u32 {
        16
    }

    /// Node-pool capacity for a run with `tasklets` tasklets (worst case
    /// every update operation is an `add`).
    pub fn node_capacity(&self, tasklets: usize) -> u32 {
        self.initial_size + self.ops_per_tasklet * tasklets as u32 + 1
    }

    /// MRAM words the list data occupies (padding word + head + node pool);
    /// the sizing counterpart of [`LinkedListData::allocate`].
    pub fn data_words(&self, tasklets: usize) -> u32 {
        2 + self.node_capacity(tasklets) * NODE_WORDS
    }
}

/// The list operations issued by the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListOp {
    /// Membership test.
    Contains(u64),
    /// Insert (no-op if the key is present).
    Add(u64),
    /// Delete (no-op if the key is absent).
    Remove(u64),
}

impl ListOp {
    /// The key this operation targets.
    pub fn key(self) -> u64 {
        match self {
            ListOp::Contains(k) | ListOp::Add(k) | ListOp::Remove(k) => k,
        }
    }

    /// Whether this operation may modify the list.
    pub fn is_update(self) -> bool {
        !matches!(self, ListOp::Contains(_))
    }
}

/// Shared list state plus per-run bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct LinkedListData {
    /// Word holding the pointer to the first node (or null).
    pub head: TVar<u64>,
    nodes: Addr,
    node_capacity: u32,
    /// First pool index not used by the initial list; tasklets carve their
    /// private allocation ranges out of the remaining pool.
    first_free_node: u32,
}

impl LinkedListData {
    /// Allocates the head word and a node pool on either executor, and
    /// inserts `config.initial_size` evenly spaced keys (host-side, before
    /// tasklets start).
    ///
    /// # Panics
    ///
    /// Panics if MRAM cannot hold the node pool.
    pub fn allocate<M: MetadataAllocator + WordAccess>(
        mem: &mut M,
        config: &LinkedListConfig,
        tasklets: usize,
    ) -> Self {
        // One padding word keeps every node at a non-zero word index so that
        // null (0) can never collide with a real node pointer.
        let _pad = mem.alloc_words(Tier::Mram, 1).expect("padding word");
        let head = TVar::new(mem.alloc_words(Tier::Mram, 1).expect("list head"));
        let node_capacity = config.node_capacity(tasklets);
        let nodes = mem
            .alloc_words(Tier::Mram, node_capacity * NODE_WORDS)
            .expect("linked-list node pool must fit in MRAM");
        let mut data = LinkedListData { head, nodes, node_capacity, first_free_node: 0 };
        let mut next_node = 0;
        for i in 0..config.initial_size {
            // Spread the initial keys over the key range, keeping them sorted.
            let key = (u64::from(i) + 1) * config.key_range / (u64::from(config.initial_size) + 1);
            data.host_insert(mem, key.max(1), &mut next_node);
        }
        data.first_free_node = next_node;
        data
    }

    /// Pointer value (non-zero) for the node with pool index `index`.
    fn node_ptr(&self, index: u32) -> u64 {
        u64::from(self.nodes.offset(index * NODE_WORDS).word)
    }

    /// Half-open node-pool index range reserved for `tasklet` when every
    /// tasklet performs `ops_per_tasklet` operations.
    fn pool_range(&self, tasklet: usize, ops_per_tasklet: u32) -> (u32, u32) {
        let start = self.first_free_node + tasklet as u32 * ops_per_tasklet;
        (start, start + ops_per_tasklet)
    }

    fn key_var(ptr: u64) -> TVar<u64> {
        TVar::new(Addr::mram(ptr as u32))
    }

    fn next_var(ptr: u64) -> TVar<u64> {
        TVar::new(Addr::mram(ptr as u32).offset(1))
    }

    /// Host-side (untimed) sorted insert used to build the initial list.
    fn host_insert<M: WordAccess>(&mut self, mem: &mut M, key: u64, next_node: &mut u32) {
        let ptr = self.node_ptr(*next_node);
        *next_node += 1;
        let mut prev_link = self.head.addr();
        let mut cur = mem.peek_word(prev_link);
        while cur != NULL && mem.peek_word(Self::key_var(cur).addr()) < key {
            prev_link = Self::next_var(cur).addr();
            cur = mem.peek_word(prev_link);
        }
        mem.poke_word(Self::key_var(ptr).addr(), key);
        mem.poke_word(Self::next_var(ptr).addr(), cur);
        mem.poke_word(prev_link, ptr);
    }

    /// Reads the whole list host-side (untimed); used by tests and examples.
    pub fn snapshot<M: WordAccess + ?Sized>(&self, mem: &M) -> Vec<u64> {
        let mut keys = Vec::new();
        let mut cur = mem.peek_word(self.head.addr());
        while cur != NULL {
            keys.push(mem.peek_word(Self::key_var(cur).addr()));
            cur = mem.peek_word(Self::next_var(cur).addr());
            assert!(keys.len() <= self.node_capacity as usize, "list is cyclic or corrupted");
        }
        keys
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ListStep {
    LoadHead,
    Traverse { prev_link: Addr, cur: u64 },
    Apply { prev_link: Addr, cur: u64, found: bool },
}

/// One list transaction (`contains`/`add`/`remove`): head load, sorted
/// traversal one node per step, then the splice.
///
/// The body reserves `add` nodes from the tasklet's private pool range and
/// reuses the reservation across retries of the same operation, so aborted
/// attempts do not leak pool slots. Call [`ListTxBody::prepare`] before each
/// operation and [`ListTxBody::committed_op`] after its commit.
#[derive(Debug)]
pub struct ListTxBody {
    data: LinkedListData,
    op: ListOp,
    step: ListStep,
    /// Node reserved for the current `add` (kept across retries).
    reserved_node: Option<u64>,
    next_free_node: u32,
    node_pool_end: u32,
}

impl ListTxBody {
    /// Creates a body for one tasklet. `pool_range` is the half-open range
    /// of node-pool indices this tasklet may allocate from.
    pub fn new(data: LinkedListData, pool_range: (u32, u32)) -> Self {
        ListTxBody {
            data,
            op: ListOp::Contains(1),
            step: ListStep::LoadHead,
            reserved_node: None,
            next_free_node: pool_range.0,
            node_pool_end: pool_range.1,
        }
    }

    /// Installs the next operation (releasing any unused reservation back to
    /// the current pool cursor is unnecessary: a reservation is only made
    /// when the splice actually executes, and committed adds consume it).
    pub fn prepare(&mut self, op: ListOp) {
        self.op = op;
        self.reserved_node = None;
    }

    /// The operation the body is currently executing.
    pub fn committed_op(&self) -> ListOp {
        self.op
    }

    fn reserve_node(&mut self) -> u64 {
        if let Some(ptr) = self.reserved_node {
            return ptr;
        }
        assert!(
            self.next_free_node < self.node_pool_end,
            "linked-list node pool exhausted for tasklet"
        );
        let ptr = self.data.node_ptr(self.next_free_node);
        self.next_free_node += 1;
        self.reserved_node = Some(ptr);
        ptr
    }
}

impl TxBody for ListTxBody {
    fn reset(&mut self) {
        self.step = ListStep::LoadHead;
    }

    fn step<O: TxOps>(&mut self, tx: &mut O) -> Result<BodyStep, Abort> {
        match self.step {
            ListStep::LoadHead => {
                let cur = tx.get(self.data.head)?;
                self.step = ListStep::Traverse { prev_link: self.data.head.addr(), cur };
                Ok(BodyStep::Continue)
            }
            ListStep::Traverse { prev_link, cur } => {
                if cur == NULL {
                    self.step = ListStep::Apply { prev_link, cur, found: false };
                    return Ok(BodyStep::Continue);
                }
                let key = tx.get(LinkedListData::key_var(cur))?;
                let target = self.op.key();
                if key < target {
                    let next = tx.get(LinkedListData::next_var(cur))?;
                    self.step = ListStep::Traverse {
                        prev_link: LinkedListData::next_var(cur).addr(),
                        cur: next,
                    };
                } else {
                    self.step = ListStep::Apply { prev_link, cur, found: key == target };
                }
                Ok(BodyStep::Continue)
            }
            ListStep::Apply { prev_link, cur, found } => {
                let prev_link = TVar::new(prev_link);
                match self.op {
                    ListOp::Contains(_) => {}
                    ListOp::Add(key) => {
                        if !found {
                            let node = self.reserve_node();
                            tx.set(LinkedListData::key_var(node), key)?;
                            tx.set(LinkedListData::next_var(node), cur)?;
                            tx.set(prev_link, node)?;
                        }
                    }
                    ListOp::Remove(_) => {
                        if found {
                            let next = tx.get(LinkedListData::next_var(cur))?;
                            tx.set(prev_link, next)?;
                        }
                    }
                }
                Ok(BodyStep::Done)
            }
        }
    }
}

/// Draws the benchmark's operation mix, alternating add/remove so the list
/// size stays roughly constant. Shared by both executors so seeded runs
/// issue identical per-tasklet operation sequences.
#[derive(Debug)]
pub struct ListOpMix {
    config: LinkedListConfig,
    rng: SimRng,
    next_update_is_add: bool,
}

impl ListOpMix {
    /// Creates the mix for one tasklet.
    pub fn new(config: LinkedListConfig, rng: SimRng) -> Self {
        ListOpMix { config, rng, next_update_is_add: true }
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> ListOp {
        let key = self.rng.next_range(self.config.key_range) + 1;
        if self.rng.next_bool(self.config.contains_fraction) {
            ListOp::Contains(key)
        } else if self.next_update_is_add {
            self.next_update_is_add = false;
            ListOp::Add(key)
        } else {
            self.next_update_is_add = true;
            ListOp::Remove(key)
        }
    }
}

/// One simulated tasklet performing a mix of list operations.
pub struct LinkedListProgram {
    runner: SimTxRunner,
    body: ListTxBody,
    mix: ListOpMix,
    remaining: u32,
    in_transaction: bool,
    commits_contains: u64,
    commits_update: u64,
}

impl LinkedListProgram {
    /// Creates one tasklet program. `pool_range` is the half-open range of
    /// node-pool indices this tasklet may allocate from.
    pub fn new(
        tm: TxMachine,
        data: LinkedListData,
        config: LinkedListConfig,
        rng: SimRng,
        pool_range: (u32, u32),
    ) -> Self {
        LinkedListProgram {
            runner: SimTxRunner::new(tm),
            body: ListTxBody::new(data, pool_range),
            mix: ListOpMix::new(config, rng),
            remaining: config.ops_per_tasklet,
            in_transaction: false,
            commits_contains: 0,
            commits_update: 0,
        }
    }

    /// Committed read-only (`contains`) operations.
    pub fn contains_commits(&self) -> u64 {
        self.commits_contains
    }

    /// Committed update (`add`/`remove`) operations.
    pub fn update_commits(&self) -> u64 {
        self.commits_update
    }
}

impl TaskletProgram for LinkedListProgram {
    fn step(&mut self, ctx: &mut TaskletCtx<'_>) -> StepStatus {
        if !self.in_transaction {
            if self.remaining == 0 {
                return StepStatus::Finished;
            }
            self.remaining -= 1;
            self.body.prepare(self.mix.next_op());
            self.in_transaction = true;
            return StepStatus::Running;
        }
        if self.runner.step(ctx, &mut self.body) == TxStatus::Committed {
            if self.body.committed_op().is_update() {
                self.commits_update += 1;
            } else {
                self.commits_contains += 1;
            }
            self.in_transaction = false;
        }
        StepStatus::Running
    }

    fn label(&self) -> &str {
        "linked-list"
    }
}

/// Builds the per-tasklet programs for one linked-list run.
pub fn build(
    dpu: &mut Dpu,
    shared: &StmShared,
    config: LinkedListConfig,
    tasklets: usize,
    seed: u64,
) -> (LinkedListData, Vec<Box<dyn TaskletProgram>>) {
    let data = LinkedListData::allocate(dpu, &config, tasklets);
    let alg = algorithm_for(shared.config().kind);
    let programs = (0..tasklets)
        .map(|t| {
            let slot = shared
                .register_tasklet(dpu, t)
                .expect("per-tasklet STM logs must fit in the metadata tier");
            let tm = TxMachine::new(shared.clone(), slot, alg);
            let pool_range = data.pool_range(t, config.ops_per_tasklet);
            Box::new(LinkedListProgram::new(tm, data, config, tasklet_rng(seed, t), pool_range))
                as Box<dyn TaskletProgram>
        })
        .collect();
    (data, programs)
}

/// Runs the same workload — the same [`ListTxBody`] — on the threaded
/// executor.
///
/// # Errors
///
/// Returns [`RunError`] if the tasklet count exceeds the hardware limit or
/// the per-tasklet transaction logs do not fit.
pub fn run_threaded(
    dpu: &mut ThreadedDpu,
    config: LinkedListConfig,
    tasklets: usize,
    seed: u64,
) -> Result<(LinkedListData, ThreadedRunReport), RunError> {
    let data = LinkedListData::allocate(dpu, &config, tasklets);
    let report = dpu.run(tasklets, |mut tasklet| {
        let t = tasklet.tasklet_id();
        let mut body = ListTxBody::new(data, data.pool_range(t, config.ops_per_tasklet));
        let mut mix = ListOpMix::new(config, tasklet_rng(seed, t));
        for _ in 0..config.ops_per_tasklet {
            body.prepare(mix.next_op());
            run_tx_body(&mut tasklet, &mut body);
        }
    })?;
    Ok((data, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{DpuConfig, Scheduler};
    use pim_stm::{MetadataPlacement, StmConfig, StmKind};

    fn run_list(kind: StmKind, config: LinkedListConfig, tasklets: usize) -> (Vec<u64>, u64) {
        let mut dpu = Dpu::new(DpuConfig::default());
        let stm_cfg = StmConfig::new(kind, MetadataPlacement::Mram)
            .with_read_set_capacity(config.read_set_capacity())
            .with_write_set_capacity(config.write_set_capacity());
        let shared = StmShared::allocate(&mut dpu, stm_cfg).unwrap();
        let (data, programs) = build(&mut dpu, &shared, config, tasklets, 7);
        let report = Scheduler::new().run(&mut dpu, programs);
        assert_eq!(
            report.total_commits(),
            config.ops_per_tasklet as u64 * tasklets as u64,
            "{kind}: every operation must eventually commit"
        );
        (data.snapshot(&dpu), report.total_aborts())
    }

    fn assert_sorted_unique(keys: &[u64]) {
        for pair in keys.windows(2) {
            assert!(pair[0] < pair[1], "list not sorted/unique: {keys:?}");
        }
    }

    #[test]
    fn initial_list_is_sorted_with_requested_size() {
        let mut dpu = Dpu::new(DpuConfig::default());
        let config = LinkedListConfig::low_contention();
        let data = LinkedListData::allocate(&mut dpu, &config, 1);
        let keys = data.snapshot(&dpu);
        assert_eq!(keys.len(), 10);
        assert_sorted_unique(&keys);
    }

    #[test]
    fn list_stays_sorted_and_unique_under_every_design() {
        let config = LinkedListConfig::high_contention().scaled(0.3);
        for kind in StmKind::ALL {
            let (keys, _) = run_list(kind, config, 4);
            assert_sorted_unique(&keys);
        }
    }

    #[test]
    fn high_contention_produces_more_aborts_than_low_contention() {
        let lc = LinkedListConfig::low_contention().scaled(0.5);
        let hc = LinkedListConfig::high_contention().scaled(0.5);
        let (_, aborts_lc) = run_list(StmKind::VrEtlWb, lc, 8);
        let (_, aborts_hc) = run_list(StmKind::VrEtlWb, hc, 8);
        assert!(
            aborts_hc >= aborts_lc,
            "HC ({aborts_hc} aborts) should conflict at least as much as LC ({aborts_lc})"
        );
        assert!(aborts_hc > 0, "50% updates over a 10-element list must conflict");
    }

    #[test]
    fn single_tasklet_never_aborts() {
        let config = LinkedListConfig::high_contention().scaled(0.5);
        let (keys, aborts) = run_list(StmKind::TinyEtlWt, config, 1);
        assert_eq!(aborts, 0);
        assert_sorted_unique(&keys);
    }

    #[test]
    fn the_same_body_keeps_the_list_sorted_on_the_threaded_executor() {
        let config = LinkedListConfig::high_contention().scaled(0.3);
        for kind in [StmKind::Norec, StmKind::TinyEtlWb, StmKind::VrEtlWt] {
            let stm_cfg = StmConfig::new(kind, MetadataPlacement::Wram)
                .with_read_set_capacity(config.read_set_capacity())
                .with_write_set_capacity(config.write_set_capacity());
            let mut dpu = ThreadedDpu::new(stm_cfg).unwrap();
            let (data, report) = run_threaded(&mut dpu, config, 4, 7).unwrap();
            assert_eq!(report.commits, config.ops_per_tasklet as u64 * 4, "{kind}");
            assert_sorted_unique(&data.snapshot(&dpu));
        }
    }
}
