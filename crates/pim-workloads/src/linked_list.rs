//! A sorted, transactional linked list (the concurrent data-structure
//! benchmark of §4.1).
//!
//! The list stores unique keys in ascending order. Every operation —
//! `contains`, `add`, `remove` — runs as one transaction that traverses the
//! list from the head and then, for updates, splices a node in or out. The
//! benchmark keeps the list size roughly constant by issuing the same number
//! of `add` and `remove` operations.
//!
//! Two contention levels are used in the paper: **LC** with 90 % `contains`
//! (read-only transactions) and **HC** with 50 % `contains`.

use pim_sim::{Addr, Dpu, SimRng, StepStatus, TaskletCtx, TaskletProgram, Tier};
use pim_stm::{algorithm_for, StmShared};

use crate::driver::TxMachine;

/// Null pointer encoding in `next` fields and the head word.
const NULL: u64 = 0;
/// Words per list node: `[key, next]`.
const NODE_WORDS: u32 = 2;

/// Parameters of a linked-list run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkedListConfig {
    /// Number of keys inserted before the benchmark starts.
    pub initial_size: u32,
    /// Operations each tasklet performs.
    pub ops_per_tasklet: u32,
    /// Fraction of operations that are `contains` (read-only).
    pub contains_fraction: f64,
    /// Range keys are drawn from (`1 ..= key_range`).
    pub key_range: u64,
}

impl LinkedListConfig {
    /// Low-contention workload of the paper: 90 % `contains`, 100 ops per
    /// tasklet, 10 initial elements.
    pub fn low_contention() -> Self {
        // A key range about twice the initial size keeps add/remove hit rates
        // balanced, so the list size stays roughly constant as the paper
        // requires.
        LinkedListConfig {
            initial_size: 10,
            ops_per_tasklet: 100,
            contains_fraction: 0.9,
            key_range: 20,
        }
    }

    /// High-contention workload of the paper: 50 % `contains`.
    pub fn high_contention() -> Self {
        LinkedListConfig { contains_fraction: 0.5, ..Self::low_contention() }
    }

    /// Scales the per-tasklet operation count, keeping at least one.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.ops_per_tasklet = ((self.ops_per_tasklet as f64 * factor).round() as u32).max(1);
        self
    }

    /// A read-set capacity large enough for full traversals of the largest
    /// list this run can produce.
    pub fn read_set_capacity(&self) -> u32 {
        // Each visited node costs up to two read-set entries (key and next)
        // plus the head pointer; the list can transiently grow by one node
        // per tasklet.
        ((self.initial_size + 64) * 2 + 16).next_power_of_two()
    }

    /// A write-set capacity large enough for any single operation.
    pub fn write_set_capacity(&self) -> u32 {
        16
    }
}

/// The list operations issued by the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListOp {
    /// Membership test.
    Contains(u64),
    /// Insert (no-op if the key is present).
    Add(u64),
    /// Delete (no-op if the key is absent).
    Remove(u64),
}

/// Shared list state plus per-run bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct LinkedListData {
    /// Word holding the pointer to the first node (or [`NULL`]).
    pub head: Addr,
    nodes: Addr,
    node_capacity: u32,
    /// First pool index not used by the initial list; tasklets carve their
    /// private allocation ranges out of the remaining pool.
    first_free_node: u32,
}

impl LinkedListData {
    /// Allocates the head word and a node pool, and inserts
    /// `config.initial_size` evenly spaced keys (host-side, before tasklets
    /// start).
    ///
    /// # Panics
    ///
    /// Panics if MRAM cannot hold the node pool.
    pub fn allocate(dpu: &mut Dpu, config: &LinkedListConfig, tasklets: usize) -> Self {
        // One padding word keeps every node at a non-zero word index so that
        // `NULL` (0) can never collide with a real node pointer.
        let _pad = dpu.alloc(Tier::Mram, 1).expect("padding word");
        let head = dpu.alloc(Tier::Mram, 1).expect("list head");
        // Worst case every update op is an `add`.
        let node_capacity = config.initial_size + config.ops_per_tasklet * tasklets as u32 + 1;
        let nodes = dpu
            .alloc(Tier::Mram, node_capacity * NODE_WORDS)
            .expect("linked-list node pool must fit in MRAM");
        let mut data = LinkedListData { head, nodes, node_capacity, first_free_node: 0 };
        let mut next_node = 0;
        for i in 0..config.initial_size {
            // Spread the initial keys over the key range, keeping them sorted.
            let key = (u64::from(i) + 1) * config.key_range / (u64::from(config.initial_size) + 1);
            data.host_insert(dpu, key.max(1), &mut next_node);
        }
        data.first_free_node = next_node;
        data
    }

    /// Pointer value (non-zero) for the node with pool index `index`.
    fn node_ptr(&self, index: u32) -> u64 {
        u64::from(self.nodes.offset(index * NODE_WORDS).word)
    }

    fn node_addr(ptr: u64) -> Addr {
        Addr::mram(ptr as u32)
    }

    fn key_addr(ptr: u64) -> Addr {
        Self::node_addr(ptr)
    }

    fn next_addr(ptr: u64) -> Addr {
        Self::node_addr(ptr).offset(1)
    }

    /// Host-side (untimed) sorted insert used to build the initial list.
    fn host_insert(&mut self, dpu: &mut Dpu, key: u64, next_node: &mut u32) {
        let ptr = self.node_ptr(*next_node);
        *next_node += 1;
        let mut prev_link = self.head;
        let mut cur = dpu.peek(prev_link);
        while cur != NULL && dpu.peek(Self::key_addr(cur)) < key {
            prev_link = Self::next_addr(cur);
            cur = dpu.peek(prev_link);
        }
        dpu.poke(Self::key_addr(ptr), key);
        dpu.poke(Self::next_addr(ptr), cur);
        dpu.poke(prev_link, ptr);
    }

    /// Reads the whole list host-side (untimed); used by tests and examples.
    pub fn snapshot(&self, dpu: &Dpu) -> Vec<u64> {
        let mut keys = Vec::new();
        let mut cur = dpu.peek(self.head);
        while cur != NULL {
            keys.push(dpu.peek(Self::key_addr(cur)));
            cur = dpu.peek(Self::next_addr(cur));
            assert!(keys.len() <= self.node_capacity as usize, "list is cyclic or corrupted");
        }
        keys
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    NextOp,
    Begin,
    LoadHead,
    Traverse { prev_link_word: u32, cur: u64 },
    Apply { prev_link_word: u32, cur: u64, found: bool },
    Commit,
}

/// One tasklet performing a mix of list operations.
pub struct LinkedListProgram {
    tm: TxMachine,
    data: LinkedListData,
    config: LinkedListConfig,
    rng: SimRng,
    remaining: u32,
    current_op: ListOp,
    /// Node reserved for the current `add` (reused across retries of the same
    /// operation so aborted attempts do not leak pool slots).
    reserved_node: Option<u64>,
    next_free_node: u32,
    node_pool_end: u32,
    /// Alternates add/remove so the list size stays roughly constant.
    next_update_is_add: bool,
    state: State,
    commits_contains: u64,
    commits_update: u64,
}

impl LinkedListProgram {
    /// Creates one tasklet program. `pool_range` is the half-open range of
    /// node-pool indices this tasklet may allocate from.
    pub fn new(
        tm: TxMachine,
        data: LinkedListData,
        config: LinkedListConfig,
        rng: SimRng,
        pool_range: (u32, u32),
    ) -> Self {
        LinkedListProgram {
            tm,
            data,
            config,
            rng,
            remaining: config.ops_per_tasklet,
            current_op: ListOp::Contains(1),
            reserved_node: None,
            next_free_node: pool_range.0,
            node_pool_end: pool_range.1,
            next_update_is_add: true,
            state: State::NextOp,
            commits_contains: 0,
            commits_update: 0,
        }
    }

    /// Committed read-only (`contains`) operations.
    pub fn contains_commits(&self) -> u64 {
        self.commits_contains
    }

    /// Committed update (`add`/`remove`) operations.
    pub fn update_commits(&self) -> u64 {
        self.commits_update
    }

    fn pick_op(&mut self) -> ListOp {
        let key = self.rng.next_range(self.config.key_range) + 1;
        if self.rng.next_bool(self.config.contains_fraction) {
            ListOp::Contains(key)
        } else if self.next_update_is_add {
            self.next_update_is_add = false;
            ListOp::Add(key)
        } else {
            self.next_update_is_add = true;
            ListOp::Remove(key)
        }
    }

    fn op_key(&self) -> u64 {
        match self.current_op {
            ListOp::Contains(k) | ListOp::Add(k) | ListOp::Remove(k) => k,
        }
    }

    fn restart(&mut self, ctx: &mut TaskletCtx<'_>) {
        self.tm.on_abort(ctx);
        self.state = State::Begin;
    }

    fn reserve_node(&mut self) -> u64 {
        if let Some(ptr) = self.reserved_node {
            return ptr;
        }
        assert!(
            self.next_free_node < self.node_pool_end,
            "linked-list node pool exhausted for tasklet"
        );
        let ptr = self.data.node_ptr(self.next_free_node);
        self.next_free_node += 1;
        self.reserved_node = Some(ptr);
        ptr
    }
}

impl TaskletProgram for LinkedListProgram {
    fn step(&mut self, ctx: &mut TaskletCtx<'_>) -> StepStatus {
        match self.state {
            State::NextOp => {
                if self.remaining == 0 {
                    return StepStatus::Finished;
                }
                self.remaining -= 1;
                self.current_op = self.pick_op();
                self.reserved_node = None;
                self.state = State::Begin;
            }
            State::Begin => {
                self.tm.begin(ctx);
                self.state = State::LoadHead;
            }
            State::LoadHead => match self.tm.read(ctx, self.data.head) {
                Ok(cur) => {
                    self.state = State::Traverse { prev_link_word: self.data.head.word, cur }
                }
                Err(_) => self.restart(ctx),
            },
            State::Traverse { prev_link_word, cur } => {
                if cur == NULL {
                    self.state = State::Apply { prev_link_word, cur, found: false };
                    return StepStatus::Running;
                }
                let key = match self.tm.read(ctx, LinkedListData::key_addr(cur)) {
                    Ok(k) => k,
                    Err(_) => {
                        self.restart(ctx);
                        return StepStatus::Running;
                    }
                };
                let target = self.op_key();
                if key < target {
                    match self.tm.read(ctx, LinkedListData::next_addr(cur)) {
                        Ok(next) => {
                            self.state = State::Traverse {
                                prev_link_word: LinkedListData::next_addr(cur).word,
                                cur: next,
                            }
                        }
                        Err(_) => self.restart(ctx),
                    }
                } else {
                    self.state = State::Apply { prev_link_word, cur, found: key == target };
                }
            }
            State::Apply { prev_link_word, cur, found } => {
                let prev_link = Addr::mram(prev_link_word);
                let result = match self.current_op {
                    ListOp::Contains(_) => Ok(()),
                    ListOp::Add(key) => {
                        if found {
                            Ok(())
                        } else {
                            let node = self.reserve_node();
                            self.tm
                                .write(ctx, LinkedListData::key_addr(node), key)
                                .and_then(|()| {
                                    self.tm.write(ctx, LinkedListData::next_addr(node), cur)
                                })
                                .and_then(|()| self.tm.write(ctx, prev_link, node))
                        }
                    }
                    ListOp::Remove(_) => {
                        if !found {
                            Ok(())
                        } else {
                            self.tm
                                .read(ctx, LinkedListData::next_addr(cur))
                                .and_then(|next| self.tm.write(ctx, prev_link, next))
                        }
                    }
                };
                match result {
                    Ok(()) => self.state = State::Commit,
                    Err(_) => self.restart(ctx),
                }
            }
            State::Commit => match self.tm.commit(ctx) {
                Ok(()) => {
                    match self.current_op {
                        ListOp::Contains(_) => self.commits_contains += 1,
                        _ => self.commits_update += 1,
                    }
                    self.reserved_node = None;
                    self.state = State::NextOp;
                }
                Err(_) => self.restart(ctx),
            },
        }
        StepStatus::Running
    }

    fn label(&self) -> &str {
        "linked-list"
    }
}

/// Builds the per-tasklet programs for one linked-list run.
pub fn build(
    dpu: &mut Dpu,
    shared: &StmShared,
    config: LinkedListConfig,
    tasklets: usize,
    seed: u64,
) -> (LinkedListData, Vec<Box<dyn TaskletProgram>>) {
    let data = LinkedListData::allocate(dpu, &config, tasklets);
    let alg = algorithm_for(shared.config().kind);
    let mut rng = SimRng::new(seed);
    let per_tasklet_pool = config.ops_per_tasklet;
    let programs = (0..tasklets)
        .map(|t| {
            let slot = shared
                .register_tasklet(dpu, t)
                .expect("per-tasklet STM logs must fit in the metadata tier");
            let tm = TxMachine::new(shared.clone(), slot, alg);
            let pool_start = data.first_free_node + t as u32 * per_tasklet_pool;
            let pool_range = (pool_start, pool_start + per_tasklet_pool);
            Box::new(LinkedListProgram::new(tm, data, config, rng.fork(t as u64), pool_range))
                as Box<dyn TaskletProgram>
        })
        .collect();
    (data, programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{DpuConfig, Scheduler};
    use pim_stm::{MetadataPlacement, StmConfig, StmKind};

    fn run_list(kind: StmKind, config: LinkedListConfig, tasklets: usize) -> (Vec<u64>, u64) {
        let mut dpu = Dpu::new(DpuConfig::default());
        let stm_cfg = StmConfig::new(kind, MetadataPlacement::Mram)
            .with_read_set_capacity(config.read_set_capacity())
            .with_write_set_capacity(config.write_set_capacity());
        let shared = StmShared::allocate(&mut dpu, stm_cfg).unwrap();
        let (data, programs) = build(&mut dpu, &shared, config, tasklets, 7);
        let report = Scheduler::new().run(&mut dpu, programs);
        assert_eq!(
            report.total_commits(),
            config.ops_per_tasklet as u64 * tasklets as u64,
            "{kind}: every operation must eventually commit"
        );
        (data.snapshot(&dpu), report.total_aborts())
    }

    fn assert_sorted_unique(keys: &[u64]) {
        for pair in keys.windows(2) {
            assert!(pair[0] < pair[1], "list not sorted/unique: {keys:?}");
        }
    }

    #[test]
    fn initial_list_is_sorted_with_requested_size() {
        let mut dpu = Dpu::new(DpuConfig::default());
        let config = LinkedListConfig::low_contention();
        let data = LinkedListData::allocate(&mut dpu, &config, 1);
        let keys = data.snapshot(&dpu);
        assert_eq!(keys.len(), 10);
        assert_sorted_unique(&keys);
    }

    #[test]
    fn list_stays_sorted_and_unique_under_every_design() {
        let config = LinkedListConfig::high_contention().scaled(0.3);
        for kind in StmKind::ALL {
            let (keys, _) = run_list(kind, config, 4);
            assert_sorted_unique(&keys);
        }
    }

    #[test]
    fn high_contention_produces_more_aborts_than_low_contention() {
        let lc = LinkedListConfig::low_contention().scaled(0.5);
        let hc = LinkedListConfig::high_contention().scaled(0.5);
        let (_, aborts_lc) = run_list(StmKind::VrEtlWb, lc, 8);
        let (_, aborts_hc) = run_list(StmKind::VrEtlWb, hc, 8);
        assert!(
            aborts_hc >= aborts_lc,
            "HC ({aborts_hc} aborts) should conflict at least as much as LC ({aborts_lc})"
        );
        assert!(aborts_hc > 0, "50% updates over a 10-element list must conflict");
    }

    #[test]
    fn single_tasklet_never_aborts() {
        let config = LinkedListConfig::high_contention().scaled(0.5);
        let (keys, aborts) = run_list(StmKind::TinyEtlWt, config, 1);
        assert_eq!(aborts, 0);
        assert_sorted_unique(&keys);
    }
}
