//! KMeans: the STAMP machine-learning benchmark ported to PIM-STM (§4.1).
//!
//! Each tasklet owns a shard of the input points. For every point it
//! computes the nearest centroid **outside** any transaction (distance
//! computation over all `k` centroids), then runs one small transaction that
//! folds the point into that centroid's running sums and membership count.
//! Read and write sets therefore have `d + 1` entries, and the fraction of
//! time spent in transactions shrinks as `k` grows — which is why the paper's
//! low-contention configuration (`k` = 15) is insensitive to the STM choice
//! while the high-contention one (`k` = 2) amplifies the differences.

use pim_sim::{Addr, Dpu, SimRng, StepStatus, TaskletCtx, TaskletProgram, Tier};
use pim_stm::{algorithm_for, Phase, StmShared};

use crate::driver::TxMachine;

/// Parameters of a KMeans run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmeansConfig {
    /// Number of clusters (`k`). The paper uses 15 (LC) and 2 (HC).
    pub clusters: u32,
    /// Point dimensionality (`d` = 14 in the paper).
    pub dimensions: u32,
    /// Input points assigned to each tasklet.
    pub points_per_tasklet: u32,
    /// Value range of point coordinates (fixed-point integers).
    pub coordinate_range: u64,
}

impl KmeansConfig {
    /// Low-contention configuration of the paper: `k` = 15, `d` = 14.
    pub fn low_contention() -> Self {
        KmeansConfig {
            clusters: 15,
            dimensions: 14,
            points_per_tasklet: 100,
            coordinate_range: 1 << 16,
        }
    }

    /// High-contention configuration of the paper: `k` = 2, `d` = 14.
    pub fn high_contention() -> Self {
        KmeansConfig { clusters: 2, ..Self::low_contention() }
    }

    /// Scales the per-tasklet point count, keeping at least one point.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.points_per_tasklet = ((self.points_per_tasklet as f64 * factor).round() as u32).max(1);
        self
    }

    /// Words per centroid record: `d` running sums plus a membership count.
    pub fn centroid_words(&self) -> u32 {
        self.dimensions + 1
    }

    /// A sufficient read-set capacity (the transaction touches `d + 1`
    /// shared words).
    pub fn read_set_capacity(&self) -> u32 {
        (self.centroid_words() + 8).next_power_of_two()
    }

    /// A sufficient write-set capacity.
    pub fn write_set_capacity(&self) -> u32 {
        (self.centroid_words() + 8).next_power_of_two()
    }
}

/// Shared KMeans state: centroid accumulators in MRAM.
#[derive(Debug, Clone, Copy)]
pub struct KmeansData {
    /// Base of the `k × (d + 1)` centroid accumulator array.
    pub centroids: Addr,
    config: KmeansConfig,
}

impl KmeansData {
    /// Allocates the centroid accumulators (zero-initialised: sums and
    /// counts start at zero for the assignment round).
    ///
    /// # Panics
    ///
    /// Panics if MRAM cannot hold the accumulators.
    pub fn allocate(dpu: &mut Dpu, config: KmeansConfig) -> Self {
        let centroids = dpu
            .alloc(Tier::Mram, config.clusters * config.centroid_words())
            .expect("centroid accumulators must fit in MRAM");
        KmeansData { centroids, config }
    }

    /// Address of dimension `dim` of centroid `cluster`'s running sum.
    pub fn sum_addr(&self, cluster: u32, dim: u32) -> Addr {
        self.centroids.offset(cluster * self.config.centroid_words() + dim)
    }

    /// Address of centroid `cluster`'s membership count.
    pub fn count_addr(&self, cluster: u32) -> Addr {
        self.centroids.offset(cluster * self.config.centroid_words() + self.config.dimensions)
    }

    /// Host-side (untimed) totals: sum of all membership counts and the grand
    /// total of all coordinate sums; used by tests to check no update was
    /// lost.
    pub fn totals(&self, dpu: &Dpu) -> (u64, u64) {
        let mut members = 0;
        let mut coord_total = 0u64;
        for c in 0..self.config.clusters {
            members += dpu.peek(self.count_addr(c));
            for d in 0..self.config.dimensions {
                coord_total = coord_total.wrapping_add(dpu.peek(self.sum_addr(c, d)));
            }
        }
        (members, coord_total)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    NextPoint,
    Scan { cluster: u32 },
    Begin,
    UpdateDim { dim: u32 },
    UpdateCount,
    Commit,
}

/// One tasklet of the KMeans benchmark.
pub struct KmeansProgram {
    tm: TxMachine,
    data: KmeansData,
    config: KmeansConfig,
    rng: SimRng,
    remaining: u32,
    /// Coordinates of the point currently being processed.
    point: Vec<u64>,
    /// Reference centroid coordinates (private copy used only for the
    /// distance heuristic, like STAMP's non-transactional read of the
    /// centres).
    reference: Vec<u64>,
    best_cluster: u32,
    best_distance: u64,
    state: State,
}

impl KmeansProgram {
    /// Creates one tasklet program.
    pub fn new(tm: TxMachine, data: KmeansData, rng: SimRng) -> Self {
        let config = data.config;
        let reference: Vec<u64> = {
            let mut seed_rng = SimRng::new(0xC0FFEE);
            (0..config.clusters * config.dimensions)
                .map(|_| seed_rng.next_range(config.coordinate_range))
                .collect()
        };
        KmeansProgram {
            tm,
            data,
            config,
            rng,
            remaining: config.points_per_tasklet,
            point: Vec::new(),
            reference,
            best_cluster: 0,
            best_distance: u64::MAX,
            state: State::NextPoint,
        }
    }

    fn restart(&mut self, ctx: &mut TaskletCtx<'_>) {
        self.tm.on_abort(ctx);
        self.state = State::Begin;
    }

    fn distance_to(&self, cluster: u32) -> u64 {
        let d = self.config.dimensions;
        (0..d)
            .map(|dim| {
                let c = self.reference[(cluster * d + dim) as usize];
                let x = self.point[dim as usize];
                let diff = c.abs_diff(x);
                diff.saturating_mul(diff)
            })
            .fold(0u64, u64::saturating_add)
    }
}

impl TaskletProgram for KmeansProgram {
    fn step(&mut self, ctx: &mut TaskletCtx<'_>) -> StepStatus {
        match self.state {
            State::NextPoint => {
                if self.remaining == 0 {
                    return StepStatus::Finished;
                }
                self.remaining -= 1;
                // Draw the point and model reading it from the tasklet's MRAM
                // shard (d words of non-transactional input).
                self.point = (0..self.config.dimensions)
                    .map(|_| self.rng.next_range(self.config.coordinate_range))
                    .collect();
                ctx.set_phase(Phase::OtherExec);
                ctx.compute(4 * u64::from(self.config.dimensions));
                self.best_cluster = 0;
                self.best_distance = u64::MAX;
                self.state = State::Scan { cluster: 0 };
            }
            State::Scan { cluster } => {
                // Non-transactional distance computation against one centroid:
                // d reference loads plus the arithmetic.
                ctx.set_phase(Phase::OtherExec);
                ctx.compute(6 * u64::from(self.config.dimensions));
                let distance = self.distance_to(cluster);
                if distance < self.best_distance {
                    self.best_distance = distance;
                    self.best_cluster = cluster;
                }
                let next = cluster + 1;
                self.state = if next < self.config.clusters {
                    State::Scan { cluster: next }
                } else {
                    State::Begin
                };
            }
            State::Begin => {
                self.tm.begin(ctx);
                self.state = State::UpdateDim { dim: 0 };
            }
            State::UpdateDim { dim } => {
                let addr = self.data.sum_addr(self.best_cluster, dim);
                let x = self.point[dim as usize];
                let result = self
                    .tm
                    .read(ctx, addr)
                    .and_then(|sum| self.tm.write(ctx, addr, sum.wrapping_add(x)));
                match result {
                    Ok(()) => {
                        let next = dim + 1;
                        self.state = if next < self.config.dimensions {
                            State::UpdateDim { dim: next }
                        } else {
                            State::UpdateCount
                        };
                    }
                    Err(_) => self.restart(ctx),
                }
            }
            State::UpdateCount => {
                let addr = self.data.count_addr(self.best_cluster);
                let result =
                    self.tm.read(ctx, addr).and_then(|count| self.tm.write(ctx, addr, count + 1));
                match result {
                    Ok(()) => self.state = State::Commit,
                    Err(_) => self.restart(ctx),
                }
            }
            State::Commit => match self.tm.commit(ctx) {
                Ok(()) => self.state = State::NextPoint,
                Err(_) => self.restart(ctx),
            },
        }
        StepStatus::Running
    }

    fn label(&self) -> &str {
        "kmeans"
    }
}

/// Builds the per-tasklet programs for one KMeans run.
pub fn build(
    dpu: &mut Dpu,
    shared: &StmShared,
    config: KmeansConfig,
    tasklets: usize,
    seed: u64,
) -> (KmeansData, Vec<Box<dyn TaskletProgram>>) {
    let data = KmeansData::allocate(dpu, config);
    let alg = algorithm_for(shared.config().kind);
    let mut rng = SimRng::new(seed);
    let programs = (0..tasklets)
        .map(|t| {
            let slot = shared
                .register_tasklet(dpu, t)
                .expect("per-tasklet STM logs must fit in the metadata tier");
            let tm = TxMachine::new(shared.clone(), slot, alg);
            Box::new(KmeansProgram::new(tm, data, rng.fork(t as u64))) as Box<dyn TaskletProgram>
        })
        .collect();
    (data, programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{DpuConfig, Scheduler};
    use pim_stm::{MetadataPlacement, StmConfig, StmKind};

    fn run_kmeans(kind: StmKind, config: KmeansConfig, tasklets: usize) -> (u64, u64, u64) {
        let mut dpu = Dpu::new(DpuConfig::default());
        let stm_cfg = StmConfig::new(kind, MetadataPlacement::Wram)
            .with_read_set_capacity(config.read_set_capacity())
            .with_write_set_capacity(config.write_set_capacity());
        let shared = StmShared::allocate(&mut dpu, stm_cfg).unwrap();
        let (data, programs) = build(&mut dpu, &shared, config, tasklets, 3);
        let report = Scheduler::new().run(&mut dpu, programs);
        let (members, _) = data.totals(&dpu);
        (report.total_commits(), report.total_aborts(), members)
    }

    #[test]
    fn paper_parameters() {
        assert_eq!(KmeansConfig::low_contention().clusters, 15);
        assert_eq!(KmeansConfig::high_contention().clusters, 2);
        assert_eq!(KmeansConfig::low_contention().dimensions, 14);
        assert_eq!(KmeansConfig::low_contention().centroid_words(), 15);
    }

    #[test]
    fn every_point_is_assigned_exactly_once() {
        let config = KmeansConfig::high_contention().scaled(0.3);
        for kind in StmKind::ALL {
            let (commits, _, members) = run_kmeans(kind, config, 4);
            let expected = config.points_per_tasklet as u64 * 4;
            assert_eq!(commits, expected, "{kind}");
            assert_eq!(members, expected, "{kind}: membership counts must not lose updates");
        }
    }

    #[test]
    fn high_contention_aborts_more_than_low_contention() {
        let lc = KmeansConfig::low_contention().scaled(0.5);
        let hc = KmeansConfig::high_contention().scaled(0.5);
        let (_, aborts_lc, _) = run_kmeans(StmKind::TinyEtlWb, lc, 8);
        let (_, aborts_hc, _) = run_kmeans(StmKind::TinyEtlWb, hc, 8);
        assert!(
            aborts_hc > aborts_lc,
            "k=2 ({aborts_hc} aborts) must conflict more than k=15 ({aborts_lc})"
        );
    }

    #[test]
    fn single_tasklet_never_aborts() {
        let (_, aborts, members) =
            run_kmeans(StmKind::VrCtlWb, KmeansConfig::high_contention().scaled(0.2), 1);
        assert_eq!(aborts, 0);
        assert_eq!(members, KmeansConfig::high_contention().scaled(0.2).points_per_tasklet as u64);
    }
}
