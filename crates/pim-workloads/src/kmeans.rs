//! KMeans: the STAMP machine-learning benchmark ported to PIM-STM (§4.1).
//!
//! Each tasklet owns a shard of the input points. For every point it
//! computes the nearest centroid **outside** any transaction (distance
//! computation over all `k` centroids), then runs one small transaction that
//! folds the point into that centroid's running sums and membership count.
//! Read and write sets therefore have `d + 1` entries, and the fraction of
//! time spent in transactions shrinks as `k` grows — which is why the paper's
//! low-contention configuration (`k` = 15) is insensitive to the STM choice
//! while the high-contention one (`k` = 2) amplifies the differences.
//!
//! The transactional fold lives in [`KmeansTxBody`], written once against
//! [`TxOps`] over a typed [`TArray`] of accumulators and driven by both
//! executors (see [`crate::driver`]); the nearest-centroid scan is shared
//! pure code ([`nearest_cluster`]).

use pim_sim::{Dpu, SimRng, StepStatus, TaskletCtx, TaskletProgram, Tier};
use pim_stm::shared::MetadataAllocator;
use pim_stm::threaded::{ThreadedDpu, ThreadedRunReport};
use pim_stm::var::{self, TArray, TVar, WordAccess};
use pim_stm::{algorithm_for, Abort, Phase, RunError, StmShared, TxOps};

use crate::driver::{run_tx_body, tasklet_rng, BodyStep, SimTxRunner, TxBody, TxMachine, TxStatus};

/// Parameters of a KMeans run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KmeansConfig {
    /// Number of clusters (`k`). The paper uses 15 (LC) and 2 (HC).
    pub clusters: u32,
    /// Point dimensionality (`d` = 14 in the paper).
    pub dimensions: u32,
    /// Input points assigned to each tasklet.
    pub points_per_tasklet: u32,
    /// Value range of point coordinates (fixed-point integers).
    pub coordinate_range: u64,
}

impl KmeansConfig {
    /// Low-contention configuration of the paper: `k` = 15, `d` = 14.
    pub fn low_contention() -> Self {
        KmeansConfig {
            clusters: 15,
            dimensions: 14,
            points_per_tasklet: 100,
            coordinate_range: 1 << 16,
        }
    }

    /// High-contention configuration of the paper: `k` = 2, `d` = 14.
    pub fn high_contention() -> Self {
        KmeansConfig { clusters: 2, ..Self::low_contention() }
    }

    /// Scales the per-tasklet point count, keeping at least one point.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.points_per_tasklet = ((self.points_per_tasklet as f64 * factor).round() as u32).max(1);
        self
    }

    /// Words per centroid record: `d` running sums plus a membership count.
    pub fn centroid_words(&self) -> u32 {
        self.dimensions + 1
    }

    /// A sufficient read-set capacity (the transaction touches `d + 1`
    /// shared words).
    pub fn read_set_capacity(&self) -> u32 {
        (self.centroid_words() + 8).next_power_of_two()
    }

    /// A sufficient write-set capacity.
    pub fn write_set_capacity(&self) -> u32 {
        (self.centroid_words() + 8).next_power_of_two()
    }

    /// MRAM words the centroid accumulators occupy; the sizing counterpart
    /// of [`KmeansData::allocate`].
    pub fn data_words(&self) -> u32 {
        self.clusters * self.centroid_words()
    }
}

/// Shared KMeans state: centroid accumulators in MRAM.
#[derive(Debug, Clone, Copy)]
pub struct KmeansData {
    /// The `k × (d + 1)` centroid accumulator array (`d` running sums
    /// followed by the membership count, per centroid).
    pub centroids: TArray<u64>,
    config: KmeansConfig,
}

impl KmeansData {
    /// Allocates the centroid accumulators on either executor
    /// (zero-initialised: sums and counts start at zero for the assignment
    /// round).
    ///
    /// # Panics
    ///
    /// Panics if MRAM cannot hold the accumulators.
    pub fn allocate<A: MetadataAllocator + ?Sized>(alloc: &mut A, config: KmeansConfig) -> Self {
        let centroids =
            var::alloc_array(alloc, Tier::Mram, config.clusters * config.centroid_words())
                .expect("centroid accumulators must fit in MRAM");
        KmeansData { centroids, config }
    }

    /// Typed handle to dimension `dim` of centroid `cluster`'s running sum.
    pub fn sum_var(&self, cluster: u32, dim: u32) -> TVar<u64> {
        self.centroids.at(cluster * self.config.centroid_words() + dim)
    }

    /// Typed handle to centroid `cluster`'s membership count.
    pub fn count_var(&self, cluster: u32) -> TVar<u64> {
        self.centroids.at(cluster * self.config.centroid_words() + self.config.dimensions)
    }

    /// Host-side (untimed) totals: sum of all membership counts and the grand
    /// total of all coordinate sums; used by tests to check no update was
    /// lost.
    pub fn totals<M: WordAccess + ?Sized>(&self, mem: &M) -> (u64, u64) {
        let mut members = 0;
        let mut coord_total = 0u64;
        for c in 0..self.config.clusters {
            members += var::peek_var(mem, self.count_var(c));
            for d in 0..self.config.dimensions {
                coord_total = coord_total.wrapping_add(var::peek_var(mem, self.sum_var(c, d)));
            }
        }
        (members, coord_total)
    }
}

/// The reference centroid coordinates used by the (non-transactional)
/// distance heuristic — a private copy per tasklet, like STAMP's
/// non-transactional read of the centres. Deterministic regardless of seed
/// or executor.
pub fn reference_centroids(config: &KmeansConfig) -> Vec<u64> {
    let mut seed_rng = SimRng::new(0xC0FFEE);
    (0..config.clusters * config.dimensions)
        .map(|_| seed_rng.next_range(config.coordinate_range))
        .collect()
}

/// Squared Euclidean distance of `point` to centroid `cluster` of the
/// private `reference` coordinates. Pure, shared by both executors.
pub fn cluster_distance(
    config: &KmeansConfig,
    reference: &[u64],
    point: &[u64],
    cluster: u32,
) -> u64 {
    let d = config.dimensions;
    (0..d)
        .map(|dim| {
            let c = reference[(cluster * d + dim) as usize];
            let x = point[dim as usize];
            let diff = c.abs_diff(x);
            diff.saturating_mul(diff)
        })
        .fold(0u64, u64::saturating_add)
}

/// Nearest centroid of `point` (see [`cluster_distance`]). Pure, shared by
/// both executors.
pub fn nearest_cluster(config: &KmeansConfig, reference: &[u64], point: &[u64]) -> u32 {
    let mut best_cluster = 0;
    let mut best_distance = u64::MAX;
    for cluster in 0..config.clusters {
        let distance = cluster_distance(config, reference, point, cluster);
        if distance < best_distance {
            best_distance = distance;
            best_cluster = cluster;
        }
    }
    best_cluster
}

/// One KMeans transaction: fold the current point into its nearest
/// centroid's accumulators, one dimension per step, then bump the
/// membership count. [`KmeansTxBody::prepare`] installs the point and its
/// (pre-computed, non-transactional) cluster assignment.
#[derive(Debug)]
pub struct KmeansTxBody {
    data: KmeansData,
    cluster: u32,
    point: Vec<u64>,
    position: u32,
}

impl KmeansTxBody {
    /// Creates a body over the shared accumulators.
    pub fn new(data: KmeansData) -> Self {
        KmeansTxBody { data, cluster: 0, point: Vec::new(), position: 0 }
    }

    /// Installs the next point and its target cluster.
    pub fn prepare(&mut self, cluster: u32, point: Vec<u64>) {
        self.cluster = cluster;
        self.point = point;
    }
}

impl TxBody for KmeansTxBody {
    fn reset(&mut self) {
        self.position = 0;
    }

    fn step<O: TxOps>(&mut self, tx: &mut O) -> Result<BodyStep, Abort> {
        let dims = self.data.config.dimensions;
        if self.position < dims {
            let var = self.data.sum_var(self.cluster, self.position);
            let sum = tx.get(var)?;
            tx.set(var, sum.wrapping_add(self.point[self.position as usize]))?;
            self.position += 1;
            Ok(BodyStep::Continue)
        } else {
            let var = self.data.count_var(self.cluster);
            let count = tx.get(var)?;
            tx.set(var, count + 1)?;
            Ok(BodyStep::Done)
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProgramState {
    NextPoint,
    Scan { cluster: u32 },
    InTransaction,
}

/// One simulated tasklet of the KMeans benchmark.
pub struct KmeansProgram {
    runner: SimTxRunner,
    body: KmeansTxBody,
    config: KmeansConfig,
    rng: SimRng,
    remaining: u32,
    /// Coordinates of the point currently being processed.
    point: Vec<u64>,
    /// Reference centroid coordinates (see [`reference_centroids`]).
    reference: Vec<u64>,
    best_cluster: u32,
    best_distance: u64,
    state: ProgramState,
}

impl KmeansProgram {
    /// Creates one tasklet program.
    pub fn new(tm: TxMachine, data: KmeansData, rng: SimRng) -> Self {
        let config = data.config;
        KmeansProgram {
            runner: SimTxRunner::new(tm),
            body: KmeansTxBody::new(data),
            config,
            rng,
            remaining: config.points_per_tasklet,
            point: Vec::new(),
            reference: reference_centroids(&config),
            best_cluster: 0,
            best_distance: u64::MAX,
            state: ProgramState::NextPoint,
        }
    }
}

impl TaskletProgram for KmeansProgram {
    fn step(&mut self, ctx: &mut TaskletCtx<'_>) -> StepStatus {
        match self.state {
            ProgramState::NextPoint => {
                if self.remaining == 0 {
                    return StepStatus::Finished;
                }
                self.remaining -= 1;
                // Draw the point and model reading it from the tasklet's MRAM
                // shard (d words of non-transactional input).
                self.point = (0..self.config.dimensions)
                    .map(|_| self.rng.next_range(self.config.coordinate_range))
                    .collect();
                ctx.set_phase(Phase::OtherExec);
                ctx.compute(4 * u64::from(self.config.dimensions));
                self.best_cluster = 0;
                self.best_distance = u64::MAX;
                self.state = ProgramState::Scan { cluster: 0 };
            }
            ProgramState::Scan { cluster } => {
                // Non-transactional distance computation against one centroid
                // (one step per centroid so the scan interleaves): d
                // reference loads plus the arithmetic.
                ctx.set_phase(Phase::OtherExec);
                ctx.compute(6 * u64::from(self.config.dimensions));
                let distance =
                    cluster_distance(&self.config, &self.reference, &self.point, cluster);
                if distance < self.best_distance {
                    self.best_distance = distance;
                    self.best_cluster = cluster;
                }
                let next = cluster + 1;
                if next < self.config.clusters {
                    self.state = ProgramState::Scan { cluster: next };
                } else {
                    // Hand the point over (NextPoint rebuilds it); cloning
                    // here would allocate once per point in the hot loop.
                    self.body.prepare(self.best_cluster, std::mem::take(&mut self.point));
                    self.state = ProgramState::InTransaction;
                }
            }
            ProgramState::InTransaction => {
                if self.runner.step(ctx, &mut self.body) == TxStatus::Committed {
                    self.state = ProgramState::NextPoint;
                }
            }
        }
        StepStatus::Running
    }

    fn label(&self) -> &str {
        "kmeans"
    }
}

/// Builds the per-tasklet programs for one KMeans run.
pub fn build(
    dpu: &mut Dpu,
    shared: &StmShared,
    config: KmeansConfig,
    tasklets: usize,
    seed: u64,
) -> (KmeansData, Vec<Box<dyn TaskletProgram>>) {
    let data = KmeansData::allocate(dpu, config);
    let alg = algorithm_for(shared.config().kind);
    let programs = (0..tasklets)
        .map(|t| {
            let slot = shared
                .register_tasklet(dpu, t)
                .expect("per-tasklet STM logs must fit in the metadata tier");
            let tm = TxMachine::new(shared.clone(), slot, alg);
            Box::new(KmeansProgram::new(tm, data, tasklet_rng(seed, t))) as Box<dyn TaskletProgram>
        })
        .collect();
    (data, programs)
}

/// Runs the same workload — the same [`KmeansTxBody`] and the same
/// [`nearest_cluster`] scan — on the threaded executor.
///
/// # Errors
///
/// Returns [`RunError`] if the tasklet count exceeds the hardware limit or
/// the per-tasklet transaction logs do not fit.
pub fn run_threaded(
    dpu: &mut ThreadedDpu,
    config: KmeansConfig,
    tasklets: usize,
    seed: u64,
) -> Result<(KmeansData, ThreadedRunReport), RunError> {
    let data = KmeansData::allocate(dpu, config);
    let report = dpu.run(tasklets, |mut tasklet| {
        let mut rng = tasklet_rng(seed, tasklet.tasklet_id());
        let reference = reference_centroids(&config);
        let mut body = KmeansTxBody::new(data);
        for _ in 0..config.points_per_tasklet {
            let point: Vec<u64> =
                (0..config.dimensions).map(|_| rng.next_range(config.coordinate_range)).collect();
            let cluster = nearest_cluster(&config, &reference, &point);
            body.prepare(cluster, point);
            run_tx_body(&mut tasklet, &mut body);
        }
    })?;
    Ok((data, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{DpuConfig, Scheduler};
    use pim_stm::{MetadataPlacement, StmConfig, StmKind};

    fn run_kmeans(kind: StmKind, config: KmeansConfig, tasklets: usize) -> (u64, u64, u64) {
        let mut dpu = Dpu::new(DpuConfig::default());
        let stm_cfg = StmConfig::new(kind, MetadataPlacement::Wram)
            .with_read_set_capacity(config.read_set_capacity())
            .with_write_set_capacity(config.write_set_capacity());
        let shared = StmShared::allocate(&mut dpu, stm_cfg).unwrap();
        let (data, programs) = build(&mut dpu, &shared, config, tasklets, 3);
        let report = Scheduler::new().run(&mut dpu, programs);
        let (members, _) = data.totals(&dpu);
        (report.total_commits(), report.total_aborts(), members)
    }

    #[test]
    fn paper_parameters() {
        assert_eq!(KmeansConfig::low_contention().clusters, 15);
        assert_eq!(KmeansConfig::high_contention().clusters, 2);
        assert_eq!(KmeansConfig::low_contention().dimensions, 14);
        assert_eq!(KmeansConfig::low_contention().centroid_words(), 15);
    }

    #[test]
    fn every_point_is_assigned_exactly_once() {
        let config = KmeansConfig::high_contention().scaled(0.3);
        for kind in StmKind::ALL {
            let (commits, _, members) = run_kmeans(kind, config, 4);
            let expected = config.points_per_tasklet as u64 * 4;
            assert_eq!(commits, expected, "{kind}");
            assert_eq!(members, expected, "{kind}: membership counts must not lose updates");
        }
    }

    #[test]
    fn high_contention_aborts_more_than_low_contention() {
        let lc = KmeansConfig::low_contention().scaled(0.5);
        let hc = KmeansConfig::high_contention().scaled(0.5);
        let (_, aborts_lc, _) = run_kmeans(StmKind::TinyEtlWb, lc, 8);
        let (_, aborts_hc, _) = run_kmeans(StmKind::TinyEtlWb, hc, 8);
        assert!(
            aborts_hc > aborts_lc,
            "k=2 ({aborts_hc} aborts) must conflict more than k=15 ({aborts_lc})"
        );
    }

    #[test]
    fn single_tasklet_never_aborts() {
        let (_, aborts, members) =
            run_kmeans(StmKind::VrCtlWb, KmeansConfig::high_contention().scaled(0.2), 1);
        assert_eq!(aborts, 0);
        assert_eq!(members, KmeansConfig::high_contention().scaled(0.2).points_per_tasklet as u64);
    }

    #[test]
    fn the_same_body_folds_every_point_on_the_threaded_executor() {
        let config = KmeansConfig::high_contention().scaled(0.3);
        let stm_cfg = StmConfig::new(StmKind::Norec, MetadataPlacement::Wram)
            .with_read_set_capacity(config.read_set_capacity())
            .with_write_set_capacity(config.write_set_capacity());
        let mut dpu = ThreadedDpu::new(stm_cfg).unwrap();
        let (data, report) = run_threaded(&mut dpu, config, 4, 3).unwrap();
        let expected = config.points_per_tasklet as u64 * 4;
        assert_eq!(report.commits, expected);
        assert_eq!(data.totals(&dpu).0, expected);
    }

    #[test]
    fn scan_matches_the_programs_incremental_search() {
        let config = KmeansConfig::low_contention();
        let reference = reference_centroids(&config);
        let mut rng = SimRng::new(5);
        for _ in 0..20 {
            let point: Vec<u64> =
                (0..config.dimensions).map(|_| rng.next_range(config.coordinate_range)).collect();
            let best = nearest_cluster(&config, &reference, &point);
            assert!(best < config.clusters);
        }
    }
}
