//! The sharded counter-array workload behind the `pim-fleet` runtime.
//!
//! A fleet run partitions one *global* keyspace `0..total_keys` across N
//! shard DPUs by contiguous range, then replays one *global* transaction
//! stream against it. Each transaction reads `reads_per_tx` keys and
//! increments `updates_per_tx` keys, all drawn i.i.d. from a seeded
//! [`KeyDist`] — crucially the stream depends only on the workload config
//! and seed, **never** on the shard count, so the committed global state
//! (per-key increment counts) is partition-invariant. Increments commute,
//! which is what lets the fleet conservation tests compare the merged
//! fingerprint of an N-shard run against a single-shard run bit-for-bit.
//!
//! The pieces, host side first:
//!
//! * [`ShardedWorkloadConfig`] + [`generate_stream`] — the N-independent
//!   global transaction stream;
//! * [`ShardMap`] — the range partition (`owner`, `base`, `span`);
//! * [`RoutingPolicy`] + [`route`] — what the host dispatcher does with a
//!   transaction whose keys span shards: split it into per-shard sub-
//!   transactions up front ([`RoutingPolicy::RouteToOwner`]) or dispatch it
//!   to its home shard, let the DPU discover the foreign key and abort, and
//!   re-dispatch split next round ([`RoutingPolicy::AbortAndRetry`]);
//!
//! and DPU side:
//!
//! * [`ShardData`] — the shard's slice of the counter array in MRAM;
//! * [`ShardTx`] — one dispatched (sub-)transaction, or a *probe* that
//!   must discover an off-shard key and cancel;
//! * [`ShardProgram`] — the per-tasklet simulator program. It drives the
//!   usual begin / step / commit machine, with one twist over
//!   [`crate::driver::SimTxRunner`]: an [`AbortReason::Explicit`] abort of
//!   a probe is *terminal* for that transaction (the DPU rejects it back to
//!   the host; retrying locally would spin forever), while every other
//!   abort retries as usual.

use pim_sim::{KeyDist, KeySampler, SimRng, StepStatus, TaskletCtx, TaskletProgram, Tier};
use pim_stm::shared::MetadataAllocator;
use pim_stm::var::{self, TArray, TVar, WordAccess};
use pim_stm::{Abort, AbortReason, TxOps};

use crate::driver::{BodyStep, TxBody, TxMachine};

/// Parameters of the global sharded workload. Everything here is
/// shard-count independent: the same config + seed produces the same
/// global stream whether it runs on 1 DPU or 1024.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedWorkloadConfig {
    /// Size of the global keyspace (counters).
    pub total_keys: u32,
    /// Transactions in the global stream.
    pub total_txns: u32,
    /// Keys read (without modification) per transaction.
    pub reads_per_tx: u32,
    /// Keys incremented per transaction.
    pub updates_per_tx: u32,
    /// Popularity distribution the keys are drawn from.
    pub dist: KeyDist,
    /// Phases the stream is cut into (>= 1). Phase `p` rotates the
    /// rank→key mapping by `p * total_keys / phases`, so under a skewed
    /// distribution the hot keys *move* to a different keyspace region at
    /// each phase change — the moving target adaptive rebalancing chases.
    /// `1` (the default) is the classic stationary stream.
    pub phases: u32,
}

impl ShardedWorkloadConfig {
    /// A small default: 4096 keys, 512 transactions of 2 reads + 2
    /// uniform updates.
    pub fn new(total_keys: u32, total_txns: u32) -> Self {
        ShardedWorkloadConfig {
            total_keys,
            total_txns,
            reads_per_tx: 2,
            updates_per_tx: 2,
            dist: KeyDist::Uniform,
            phases: 1,
        }
    }

    /// Replaces the key-popularity distribution.
    pub fn with_dist(mut self, dist: KeyDist) -> Self {
        self.dist = dist;
        self
    }

    /// Replaces the phase count (must be >= 1).
    pub fn with_phases(mut self, phases: u32) -> Self {
        assert!(phases >= 1, "a stream has at least one phase");
        self.phases = phases;
        self
    }

    /// Keys touched per transaction.
    pub fn keys_per_tx(&self) -> u32 {
        self.reads_per_tx + self.updates_per_tx
    }
}

/// One transaction of the global stream: `reads` keys are read, `updates`
/// keys are incremented. Keys are **global** (the dispatcher routes them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalTx {
    /// Position in the global stream (stable across routing).
    pub id: u32,
    /// Keys read without modification.
    pub reads: Vec<u32>,
    /// Keys incremented by one.
    pub updates: Vec<u32>,
}

/// Generates the seeded global stream. One [`SimRng`] draw per key, in
/// transaction order — independent of shard count, round size and host
/// thread count. With `phases > 1` the stream is cut into equal
/// contiguous segments and phase `p` rotates every drawn key by
/// `p * total_keys / phases` ([`KeySampler::sample_shifted`]), keeping
/// the draw discipline (and therefore phase-count-independent prefixes
/// within a phase) intact.
pub fn generate_stream(config: &ShardedWorkloadConfig, seed: u64) -> Vec<GlobalTx> {
    let sampler = KeySampler::new(config.dist, u64::from(config.total_keys));
    let mut rng = SimRng::new(seed);
    let phases = config.phases.max(1);
    let phase_shift = u64::from(config.total_keys / phases);
    (0..config.total_txns)
        .map(|id| {
            let phase = u64::from(id) * u64::from(phases) / u64::from(config.total_txns.max(1));
            let offset = phase * phase_shift;
            let mut draw = || sampler.sample_shifted(&mut rng, offset) as u32;
            let reads = (0..config.reads_per_tx).map(|_| draw()).collect();
            let updates = (0..config.updates_per_tx).map(|_| draw()).collect();
            GlobalTx { id, reads, updates }
        })
        .collect()
}

/// The contiguous range partition of `0..total_keys` over N shards, as a
/// mutable boundary map: `bounds[s]` is the first global key shard `s`
/// owns, so shard `s` owns `bounds[s]..bounds[s+1]` (the last shard runs
/// to `total_keys`). The equal-stride constructor reproduces the classic
/// static partition; [`ShardMap::rebalanced`] recuts the boundaries from
/// measured per-key load, which is what skew-adaptive rebalancing swaps
/// in between fleet rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    total_keys: u32,
    /// `bounds[s]` = first key of shard `s`; ascending, `bounds[0] == 0`,
    /// every entry `<= total_keys` (a shard may own an empty range).
    bounds: Vec<u32>,
}

impl ShardMap {
    /// Partitions `0..total_keys` into `shards` contiguous ranges of
    /// `ceil(total_keys / shards)` keys (the last range takes the
    /// remainder).
    ///
    /// # Panics
    ///
    /// Panics when either count is zero.
    pub fn new(total_keys: u32, shards: u32) -> Self {
        assert!(total_keys > 0, "shard map needs a non-empty keyspace");
        assert!(shards > 0, "shard map needs at least one shard");
        let stride = total_keys.div_ceil(shards);
        let bounds = (0..shards).map(|s| (s * stride).min(total_keys)).collect();
        ShardMap { total_keys, bounds }
    }

    /// Builds a map from explicit boundaries (`bounds[s]` = first key of
    /// shard `s`).
    ///
    /// # Panics
    ///
    /// Panics unless `bounds` is non-empty, starts at 0, is
    /// non-decreasing, and stays within the keyspace.
    pub fn with_bounds(total_keys: u32, bounds: Vec<u32>) -> Self {
        assert!(total_keys > 0, "shard map needs a non-empty keyspace");
        assert!(!bounds.is_empty(), "shard map needs at least one shard");
        assert_eq!(bounds[0], 0, "the first shard must start at key 0");
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "boundaries must be non-decreasing");
        assert!(*bounds.last().expect("non-empty") <= total_keys, "boundaries exceed the keyspace");
        ShardMap { total_keys, bounds }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.bounds.len() as u32
    }

    /// Size of the global keyspace.
    pub fn total_keys(&self) -> u32 {
        self.total_keys
    }

    /// The shard boundaries (`bounds[s]` = first key of shard `s`).
    pub fn bounds(&self) -> &[u32] {
        &self.bounds
    }

    /// The shard owning `key`.
    pub fn owner(&self, key: u32) -> u32 {
        debug_assert!(key < self.total_keys);
        // Last boundary at or below `key`; bounds[0] == 0 guarantees one.
        self.bounds.partition_point(|&b| b <= key) as u32 - 1
    }

    /// First global key of `shard`'s range.
    pub fn base(&self, shard: u32) -> u32 {
        self.bounds[shard as usize]
    }

    /// Number of keys `shard` owns (zero is possible when there are more
    /// shards than keys).
    pub fn span(&self, shard: u32) -> u32 {
        let next = self.bounds.get(shard as usize + 1).copied().unwrap_or(self.total_keys);
        next - self.base(shard)
    }

    /// Recuts the boundaries so each shard carries an (approximately)
    /// equal share of `key_load` — measured touches per global key. Each
    /// key is weighted `load + 1`, so unreferenced regions still spread
    /// across shards instead of collapsing onto one; a single key hotter
    /// than a whole fair share still caps the cut at key granularity
    /// (keys are never split). The result has the same shard count and is
    /// fully determined by the inputs.
    ///
    /// # Panics
    ///
    /// Panics unless `key_load` covers the keyspace exactly.
    pub fn rebalanced(&self, key_load: &[u64]) -> ShardMap {
        assert_eq!(key_load.len(), self.total_keys as usize, "one load entry per key");
        let shards = self.shards() as u128;
        let total: u128 = key_load.iter().map(|&l| u128::from(l) + 1).sum();
        let mut bounds = Vec::with_capacity(self.bounds.len());
        bounds.push(0u32);
        let mut prefix: u128 = 0;
        let mut next = 1u128;
        for (key, &load) in key_load.iter().enumerate() {
            prefix += u128::from(load) + 1;
            // Cut shard `next` as soon as the prefix reaches its target
            // share `next * total / shards`; a very hot key may cross
            // several targets at once, leaving empty shards behind it.
            while next < shards && prefix * shards >= next * total {
                bounds.push(key as u32 + 1);
                next += 1;
            }
        }
        while (bounds.len() as u128) < shards {
            bounds.push(self.total_keys);
        }
        ShardMap { total_keys: self.total_keys, bounds }
    }
}

/// What the host dispatcher does with a transaction whose keys span more
/// than one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// The host inspects the key set up front and splits the transaction
    /// into independent per-owner sub-transactions, all dispatched in the
    /// same round. No DPU time is wasted; the host pays the routing work.
    RouteToOwner,
    /// The host dispatches the whole transaction to its *home* shard (the
    /// owner of its first key). The DPU executes the home-local reads,
    /// discovers the foreign key, and explicitly aborts ([`TxOps::cancel`]
    /// → one [`AbortReason::Explicit`] abort, no commit, real cycles
    /// burned). The host then re-dispatches the transaction split per
    /// owner in the **next** round.
    AbortAndRetry,
}

impl RoutingPolicy {
    /// Parses `"route-to-owner"` / `"abort-retry"`.
    ///
    /// # Errors
    ///
    /// Returns the accepted spellings when `text` is neither.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text.trim() {
            "route-to-owner" | "owner" => Ok(RoutingPolicy::RouteToOwner),
            "abort-retry" | "abort-and-retry" => Ok(RoutingPolicy::AbortAndRetry),
            other => Err(format!(
                "unknown routing policy {other:?} (want route-to-owner or abort-retry)"
            )),
        }
    }

    /// Canonical CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            RoutingPolicy::RouteToOwner => "route-to-owner",
            RoutingPolicy::AbortAndRetry => "abort-retry",
        }
    }
}

impl std::fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One dispatched (sub-)transaction as a shard DPU sees it. Keys are
/// global; the shard translates through [`ShardData`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTx {
    /// Global stream id of the originating [`GlobalTx`].
    pub origin: u32,
    /// Shard-owned keys to read.
    pub reads: Vec<u32>,
    /// Shard-owned keys to increment.
    pub updates: Vec<u32>,
    /// A probe transaction under [`RoutingPolicy::AbortAndRetry`]: after
    /// executing its reads it must cancel (the off-shard discovery), so it
    /// never commits and its updates list is empty by construction.
    pub probe: bool,
}

impl ShardTx {
    /// Wire-format size of this descriptor in bytes (one 8-byte header +
    /// 8 bytes per key) — what `scatter` charges for moving it host→DPU.
    pub fn wire_bytes(&self) -> u64 {
        8 + 8 * (self.reads.len() as u64 + self.updates.len() as u64)
    }
}

/// The host dispatcher's routing decision for one global transaction.
#[derive(Debug, Clone, Default)]
pub struct Routed {
    /// Sub-transactions to dispatch in the current round, `(shard, tx)`.
    pub now: Vec<(u32, ShardTx)>,
    /// Sub-transactions deferred to the next round (the abort-and-retry
    /// re-dispatch after a probe rejection).
    pub deferred: Vec<(u32, ShardTx)>,
}

/// Splits `tx` into per-owner sub-transactions, in ascending shard order.
fn split(tx: &GlobalTx, map: &ShardMap) -> Vec<(u32, ShardTx)> {
    let mut parts: Vec<(u32, ShardTx)> = Vec::new();
    fn part(parts: &mut Vec<(u32, ShardTx)>, origin: u32, shard: u32) -> usize {
        match parts.iter().position(|(s, _)| *s == shard) {
            Some(i) => i,
            None => {
                parts.push((
                    shard,
                    ShardTx { origin, reads: Vec::new(), updates: Vec::new(), probe: false },
                ));
                parts.len() - 1
            }
        }
    }
    for &key in &tx.reads {
        let i = part(&mut parts, tx.id, map.owner(key));
        parts[i].1.reads.push(key);
    }
    for &key in &tx.updates {
        let i = part(&mut parts, tx.id, map.owner(key));
        parts[i].1.updates.push(key);
    }
    parts.sort_by_key(|(s, _)| *s);
    parts
}

/// Routes one global transaction under `policy`. Local transactions (all
/// keys on one shard) dispatch unchanged either way; see
/// [`RoutingPolicy`] for the cross-shard behaviour.
pub fn route(tx: &GlobalTx, map: &ShardMap, policy: RoutingPolicy) -> Routed {
    let home = map.owner(*tx.reads.first().or_else(|| tx.updates.first()).expect("empty tx"));
    let local = tx.reads.iter().chain(&tx.updates).all(|&k| map.owner(k) == home);
    if local {
        return Routed {
            now: vec![(
                home,
                ShardTx {
                    origin: tx.id,
                    reads: tx.reads.clone(),
                    updates: tx.updates.clone(),
                    probe: false,
                },
            )],
            deferred: Vec::new(),
        };
    }
    match policy {
        RoutingPolicy::RouteToOwner => Routed { now: split(tx, map), deferred: Vec::new() },
        RoutingPolicy::AbortAndRetry => {
            let home_reads = tx.reads.iter().copied().filter(|&k| map.owner(k) == home).collect();
            let probe =
                ShardTx { origin: tx.id, reads: home_reads, updates: Vec::new(), probe: true };
            Routed { now: vec![(home, probe)], deferred: split(tx, map) }
        }
    }
}

/// One shard's slice of the global counter array, resident in its DPU's
/// MRAM.
#[derive(Debug, Clone, Copy)]
pub struct ShardData {
    array: TArray<u64>,
    base: u32,
    span: u32,
}

impl ShardData {
    /// Allocates the counters for the shard owning global keys
    /// `base..base + span`.
    ///
    /// # Panics
    ///
    /// Panics if the DPU's MRAM cannot hold the slice (the fleet sizes
    /// each DPU to its shard, so this indicates a sizing bug).
    pub fn allocate<A: MetadataAllocator + ?Sized>(alloc: &mut A, base: u32, span: u32) -> Self {
        let array = var::alloc_array(alloc, Tier::Mram, span.max(1))
            .expect("shard counter slice must fit in the shard DPU's MRAM");
        ShardData { array, base, span }
    }

    /// First global key this shard owns.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of keys this shard owns.
    pub fn span(&self) -> u32 {
        self.span
    }

    /// The counter for global key `key` (must be shard-owned).
    pub fn counter(&self, key: u32) -> TVar<u64> {
        debug_assert!(
            key >= self.base && key < self.base + self.span,
            "key {key} is not owned by shard [{}, {})",
            self.base,
            self.base + self.span
        );
        self.array.at(key - self.base)
    }

    /// Sum of this shard's counters, read host-side.
    pub fn counter_sum<M: WordAccess + ?Sized>(&self, mem: &M) -> u64 {
        (0..self.span).map(|i| var::peek_var(mem, self.array.at(i))).sum()
    }

    /// Folds this shard's counters (in global key order) into an FNV-1a
    /// hash state. Folding every shard in shard order therefore hashes the
    /// whole global array in key order — the partition-invariant
    /// fingerprint.
    pub fn fold_fingerprint<M: WordAccess + ?Sized>(&self, mem: &M, hash: u64) -> u64 {
        let mut hash = hash;
        for i in 0..self.span {
            let word = var::peek_var(mem, self.array.at(i));
            for byte in word.to_le_bytes() {
                hash = (hash ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
            }
        }
        hash
    }
}

/// FNV-1a offset basis — seed value for [`ShardData::fold_fingerprint`].
pub const FINGERPRINT_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// The resumable body of one [`ShardTx`]: reads, then increment
/// read-modify-writes, one operation per simulator step; a probe issues
/// its reads and then cancels.
#[derive(Debug)]
struct ShardTxBody {
    data: ShardData,
    tx: ShardTx,
    position: usize,
}

impl ShardTxBody {
    fn total_ops(&self) -> usize {
        self.tx.reads.len() + self.tx.updates.len()
    }
}

impl TxBody for ShardTxBody {
    fn reset(&mut self) {
        self.position = 0;
    }

    fn step<O: TxOps>(&mut self, tx: &mut O) -> Result<BodyStep, Abort> {
        let position = self.position;
        if position < self.tx.reads.len() {
            tx.get(self.data.counter(self.tx.reads[position]))?;
        } else if position < self.total_ops() {
            let counter = self.data.counter(self.tx.updates[position - self.tx.reads.len()]);
            let value = tx.get(counter)?;
            tx.set(counter, value.wrapping_add(1))?;
        } else {
            // A probe has run out of local work: this is the step where the
            // DPU "discovers" the off-shard key and rejects the transaction
            // back to the host.
            debug_assert!(self.tx.probe);
            return Err(tx.cancel());
        }
        self.position += 1;
        if self.position >= self.total_ops() && !self.tx.probe {
            Ok(BodyStep::Done)
        } else {
            Ok(BodyStep::Continue)
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardState {
    Idle,
    Begin,
    Step,
    Commit,
}

/// One shard tasklet's program for one fleet round: drains its batch of
/// [`ShardTx`]s through the begin / step / commit machine.
///
/// Differs from [`crate::driver::SimTxRunner`] in exactly one rule: an
/// [`AbortReason::Explicit`] abort (a probe's cancel) is **terminal** for
/// the current transaction — it is counted as rejected and the program
/// moves on, because the host, not the DPU, will retry it. All other abort
/// reasons rewind and retry locally as usual.
pub struct ShardProgram {
    machine: TxMachine,
    body: ShardTxBody,
    batch: std::vec::IntoIter<ShardTx>,
    state: ShardState,
    rejected: u64,
    /// Where the machine's online tuner is deposited when this program is
    /// dropped (i.e. after the round's scheduler run): the scheduler
    /// consumes its programs, so this side channel is how a round-based
    /// host persists per-tasklet tuner state — window signal, decision log
    /// and tuned knobs — across rounds. `None` discards the tuner with the
    /// machine.
    tuner_stash: Option<std::rc::Rc<std::cell::RefCell<Option<pim_stm::Tuner>>>>,
}

impl ShardProgram {
    /// Creates the program for one tasklet's share of a round batch.
    pub fn new(machine: TxMachine, data: ShardData, batch: Vec<ShardTx>) -> Self {
        ShardProgram {
            machine,
            body: ShardTxBody {
                data,
                tx: ShardTx { origin: 0, reads: Vec::new(), updates: Vec::new(), probe: false },
                position: 0,
            },
            batch: batch.into_iter(),
            state: ShardState::Idle,
            rejected: 0,
            tuner_stash: None,
        }
    }

    /// Arranges for the machine's online tuner to be deposited into `stash`
    /// when the program drops (see the field documentation).
    pub fn with_tuner_stash(
        mut self,
        stash: std::rc::Rc<std::cell::RefCell<Option<pim_stm::Tuner>>>,
    ) -> Self {
        self.tuner_stash = Some(stash);
        self
    }

    /// Transactions this tasklet committed.
    pub fn commits(&self) -> u64 {
        self.machine.commits()
    }

    /// Probe transactions rejected back to the host.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

impl Drop for ShardProgram {
    fn drop(&mut self) {
        if let Some(stash) = &self.tuner_stash {
            *stash.borrow_mut() = self.machine.take_tuner();
        }
    }
}

impl TaskletProgram for ShardProgram {
    fn step(&mut self, ctx: &mut TaskletCtx<'_>) -> StepStatus {
        match self.state {
            ShardState::Idle => match self.batch.next() {
                None => StepStatus::Finished,
                Some(tx) => {
                    self.body.tx = tx;
                    self.state = ShardState::Begin;
                    StepStatus::Running
                }
            },
            ShardState::Begin => {
                self.machine.begin(ctx);
                self.body.reset();
                self.state = ShardState::Step;
                StepStatus::Running
            }
            ShardState::Step => {
                match self.body.step(&mut self.machine.ops(ctx)) {
                    Ok(BodyStep::Continue) => {}
                    Ok(BodyStep::Done) => self.state = ShardState::Commit,
                    Err(abort) => {
                        self.machine.on_abort(ctx, abort.reason);
                        self.state = if abort.reason == AbortReason::Explicit {
                            // Probe rejection: the host re-dispatches; the
                            // DPU must not spin on the cancel.
                            self.rejected += 1;
                            ShardState::Idle
                        } else {
                            ShardState::Begin
                        };
                    }
                }
                StepStatus::Running
            }
            ShardState::Commit => {
                match self.machine.commit(ctx) {
                    Ok(()) => self.state = ShardState::Idle,
                    Err(abort) => {
                        self.machine.on_abort(ctx, abort.reason);
                        self.state = ShardState::Begin;
                    }
                }
                StepStatus::Running
            }
        }
    }

    fn label(&self) -> &str {
        "fleet-shard"
    }
}

/// Deals a round batch across `tasklets` round-robin, preserving relative
/// order within each tasklet's hand.
pub fn deal_batch(batch: Vec<ShardTx>, tasklets: usize) -> Vec<Vec<ShardTx>> {
    let mut hands: Vec<Vec<ShardTx>> = (0..tasklets.max(1)).map(|_| Vec::new()).collect();
    for (i, tx) in batch.into_iter().enumerate() {
        let hand = i % tasklets.max(1);
        hands[hand].push(tx);
    }
    hands
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::{Dpu, DpuConfig, Scheduler};
    use pim_stm::{algorithm_for, MetadataPlacement, StmConfig, StmKind, StmShared};

    fn local_tx(id: u32, reads: Vec<u32>, updates: Vec<u32>) -> GlobalTx {
        GlobalTx { id, reads, updates }
    }

    #[test]
    fn shard_map_partitions_the_whole_keyspace() {
        let map = ShardMap::new(1000, 7);
        let mut covered = 0;
        for s in 0..7 {
            for k in map.base(s)..map.base(s) + map.span(s) {
                assert_eq!(map.owner(k), s, "key {k}");
            }
            covered += map.span(s);
        }
        assert_eq!(covered, 1000);
        // More shards than keys: trailing shards own zero keys.
        let tiny = ShardMap::new(3, 8);
        assert_eq!((0..8).map(|s| tiny.span(s)).sum::<u32>(), 3);
    }

    #[test]
    fn rebalancing_recuts_boundaries_toward_the_load() {
        let map = ShardMap::new(100, 4);
        // All load on keys 0..10: the hot decile spreads over the shards
        // and the cold tail compresses.
        let mut load = vec![0u64; 100];
        for entry in load.iter_mut().take(10) {
            *entry = 1000;
        }
        let hot = map.rebalanced(&load);
        assert_eq!(hot.shards(), 4);
        assert_eq!(hot.total_keys(), 100);
        // Every shard still owns a contiguous range covering the keyspace.
        assert_eq!((0..4).map(|s| hot.span(s)).sum::<u32>(), 100);
        for s in 0..4 {
            for k in hot.base(s)..hot.base(s) + hot.span(s) {
                assert_eq!(hot.owner(k), s);
            }
        }
        // The hot region no longer sits on one shard: shard 0 shrank from
        // 25 keys to a handful, and per-shard load is near-balanced.
        assert!(hot.span(0) < 10, "hot shard must shrink (span {})", hot.span(0));
        let shard_load = |m: &ShardMap, s: u32| -> u64 {
            (m.base(s)..m.base(s) + m.span(s)).map(|k| load[k as usize]).sum()
        };
        let max_hot = (0..4).map(|s| shard_load(&hot, s)).max().unwrap();
        let max_static = (0..4).map(|s| shard_load(&map, s)).max().unwrap();
        assert!(max_hot * 2 < max_static, "rebalance must split the hot range");
        // Uniform load reproduces a near-equal partition.
        let flat = map.rebalanced(&vec![5u64; 100]);
        assert!((0..4).all(|s| flat.span(s) == 25));
        // Explicit bounds round-trip and bad bounds are rejected.
        let explicit = ShardMap::with_bounds(100, hot.bounds().to_vec());
        assert_eq!(explicit, hot);
        assert!(std::panic::catch_unwind(|| ShardMap::with_bounds(100, vec![1, 50])).is_err());
        assert!(std::panic::catch_unwind(|| ShardMap::with_bounds(100, vec![0, 60, 40])).is_err());
    }

    #[test]
    fn phased_streams_move_the_hot_region_and_stay_deterministic() {
        let base = ShardedWorkloadConfig::new(1024, 400).with_dist(KeyDist::Zipf { theta: 1.2 });
        let stationary = generate_stream(&base, 7);
        let phased = generate_stream(&base.with_phases(2), 7);
        assert_eq!(phased.len(), stationary.len());
        // Phase 0 is untouched; phase 1 rotates every key by half the
        // keyspace (same underlying draws).
        for (a, b) in stationary.iter().zip(&phased) {
            let keys = |t: &GlobalTx| t.reads.iter().chain(&t.updates).copied().collect::<Vec<_>>();
            if b.id < 200 {
                assert_eq!(keys(a), keys(b), "phase 0 must match the stationary stream");
            } else {
                let rotated: Vec<u32> = keys(a).iter().map(|&k| (k + 512) % 1024).collect();
                assert_eq!(keys(b), rotated, "phase 1 is the rotated mapping");
            }
        }
        assert_eq!(generate_stream(&base.with_phases(2), 7), phased, "seeded and reproducible");
        assert_eq!(generate_stream(&base.with_phases(1), 7), stationary);
    }

    #[test]
    fn stream_generation_is_shard_count_independent() {
        let config = ShardedWorkloadConfig::new(4096, 64).with_dist(KeyDist::Zipf { theta: 0.9 });
        let a = generate_stream(&config, 42);
        let b = generate_stream(&config, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|t| t.reads.len() == 2 && t.updates.len() == 2));
        assert!(a.iter().flat_map(|t| t.reads.iter().chain(&t.updates)).all(|&k| k < 4096));
    }

    #[test]
    fn route_to_owner_splits_cross_shard_txns() {
        let map = ShardMap::new(100, 4); // shards own 25 keys each
        let tx = local_tx(7, vec![3, 30], vec![60, 4]);
        let routed = route(&tx, &map, RoutingPolicy::RouteToOwner);
        assert!(routed.deferred.is_empty());
        assert_eq!(routed.now.len(), 3);
        let total_keys: usize =
            routed.now.iter().map(|(_, t)| t.reads.len() + t.updates.len()).sum();
        assert_eq!(total_keys, 4);
        assert!(routed
            .now
            .iter()
            .all(|(s, t)| { t.reads.iter().chain(&t.updates).all(|&k| map.owner(k) == *s) }));
    }

    #[test]
    fn abort_retry_probes_home_and_defers_the_split() {
        let map = ShardMap::new(100, 4);
        let tx = local_tx(9, vec![3, 30], vec![60]);
        let routed = route(&tx, &map, RoutingPolicy::AbortAndRetry);
        assert_eq!(routed.now.len(), 1);
        let (home, probe) = &routed.now[0];
        assert_eq!(*home, 0, "home = owner of the first key");
        assert!(probe.probe);
        assert_eq!(probe.reads, vec![3], "probe only reads home-local keys");
        assert!(probe.updates.is_empty(), "a probe must not apply partial updates");
        assert_eq!(routed.deferred.len(), 3);
    }

    #[test]
    fn local_txns_dispatch_unchanged_under_both_policies() {
        let map = ShardMap::new(100, 4);
        let tx = local_tx(1, vec![26, 30], vec![49]);
        for policy in [RoutingPolicy::RouteToOwner, RoutingPolicy::AbortAndRetry] {
            let routed = route(&tx, &map, policy);
            assert!(routed.deferred.is_empty());
            assert_eq!(routed.now.len(), 1);
            assert_eq!(routed.now[0].0, 1);
            assert!(!routed.now[0].1.probe);
        }
    }

    fn run_one_shard(batch: Vec<ShardTx>, span: u32) -> (Dpu, ShardData, u64, u64) {
        let mut dpu = Dpu::new(DpuConfig::small());
        let cfg = StmConfig::new(StmKind::Norec, MetadataPlacement::Mram);
        let shared = StmShared::allocate(&mut dpu, cfg).unwrap();
        let data = ShardData::allocate(&mut dpu, 0, span);
        let alg = algorithm_for(shared.config().kind);
        let tasklets = 4;
        let programs: Vec<Box<dyn TaskletProgram>> = deal_batch(batch, tasklets)
            .into_iter()
            .enumerate()
            .map(|(t, hand)| {
                let slot = shared.register_tasklet(&mut dpu, t).unwrap();
                let tm = TxMachine::new(shared.clone(), slot, alg);
                Box::new(ShardProgram::new(tm, data, hand)) as Box<dyn TaskletProgram>
            })
            .collect();
        let report = Scheduler::new().run(&mut dpu, programs);
        let explicit: u64 = report
            .tasklet_stats
            .iter()
            .map(|s| s.profile.abort_codes[AbortReason::Explicit.index()])
            .sum();
        let commits = report.total_commits();
        (dpu, data, commits, explicit)
    }

    #[test]
    fn shard_program_commits_local_batches_and_conserves_increments() {
        let batch: Vec<ShardTx> = (0..40)
            .map(|i| ShardTx {
                origin: i,
                reads: vec![i % 16],
                updates: vec![(i * 7) % 16, (i * 3) % 16],
                probe: false,
            })
            .collect();
        let (dpu, data, commits, explicit) = run_one_shard(batch, 16);
        assert_eq!(commits, 40);
        assert_eq!(explicit, 0);
        assert_eq!(data.counter_sum(&dpu), 80, "two increments per committed tx");
    }

    #[test]
    fn probes_reject_exactly_once_and_commit_nothing() {
        let mut batch: Vec<ShardTx> = (0..10)
            .map(|i| ShardTx { origin: i, reads: vec![i % 8], updates: vec![], probe: true })
            .collect();
        // One probe with no local reads at all: cancels on its first step.
        batch.push(ShardTx { origin: 99, reads: vec![], updates: vec![], probe: true });
        let (dpu, data, commits, explicit) = run_one_shard(batch, 8);
        assert_eq!(commits, 0, "probes never commit");
        assert_eq!(explicit, 11, "every probe rejects exactly once");
        assert_eq!(data.counter_sum(&dpu), 0);
    }

    #[test]
    fn fingerprint_folding_is_partition_invariant() {
        // Hash 8 counters as one shard vs two 4-counter shards: identical.
        let mut dpu = Dpu::new(DpuConfig::small());
        let whole = ShardData::allocate(&mut dpu, 0, 8);
        for i in 0..8 {
            var::poke_var(&mut dpu, whole.array.at(i), u64::from(i) * 3);
        }
        let one = whole.fold_fingerprint(&dpu, FINGERPRINT_SEED);

        let mut dpu2 = Dpu::new(DpuConfig::small());
        let lo = ShardData::allocate(&mut dpu2, 0, 4);
        let mut dpu3 = Dpu::new(DpuConfig::small());
        let hi = ShardData::allocate(&mut dpu3, 4, 4);
        for i in 0..4 {
            var::poke_var(&mut dpu2, lo.array.at(i), u64::from(i) * 3);
            var::poke_var(&mut dpu3, hi.array.at(i), u64::from(i + 4) * 3);
        }
        let two = hi.fold_fingerprint(&dpu3, lo.fold_fingerprint(&dpu2, FINGERPRINT_SEED));
        assert_eq!(one, two);
    }

    #[test]
    fn policy_parsing_round_trips() {
        for policy in [RoutingPolicy::RouteToOwner, RoutingPolicy::AbortAndRetry] {
            assert_eq!(RoutingPolicy::parse(policy.label()).unwrap(), policy);
        }
        assert!(RoutingPolicy::parse("teleport").is_err());
    }

    #[test]
    fn deal_batch_preserves_every_transaction() {
        let batch: Vec<ShardTx> = (0..13)
            .map(|i| ShardTx { origin: i, reads: vec![], updates: vec![0], probe: false })
            .collect();
        let hands = deal_batch(batch, 4);
        assert_eq!(hands.len(), 4);
        assert_eq!(hands.iter().map(Vec::len).sum::<usize>(), 13);
        let mut origins: Vec<u32> = hands.iter().flat_map(|h| h.iter().map(|t| t.origin)).collect();
        origins.sort_unstable();
        assert_eq!(origins, (0..13).collect::<Vec<_>>());
    }
}
