//! Single-DPU service runs: admission in front of the tasklet pool, on both
//! executors.
//!
//! The request stream is generated up front (see [`crate::request`]); the
//! **admission queue** sits between it and the tasklets. A tasklet with no
//! request in flight asks admission for the next due request:
//!
//! * on the **simulator**, a not-yet-due front request parks the tasklet
//!   with [`StepStatus::IdleUntil`] — virtual time advances to the arrival
//!   without charging busy cycles, which is what makes open-loop offered
//!   loads below capacity cheap to simulate;
//! * on the **threaded executor**, the tasklet sleeps/yields until the
//!   wall-clock arrival.
//!
//! Dispatch stamps the queueing delay (`dispatch − arrival`); the STM engine
//! stamps first-attempt and commit (see `pim_stm::txslot::TxStamps`), so
//! queueing time is separable from STM service time per request, not just in
//! aggregate.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Mutex;
use std::time::Duration;

use pim_sim::{
    Dpu, DpuConfig, DpuRunReport, KeyDist, Scheduler, StepStatus, TaskletCtx, TaskletProgram, Tier,
};
use pim_stm::threaded::{wall_clock_nanos, ThreadedDpu};
use pim_stm::{
    algorithm_for, MetadataPlacement, StmConfig, StmKind, StmShared, TimeDomain, TxSlot,
};
use pim_workloads::{run_tx_body, Executor, SimTxRunner, TxMachine, TxStatus};

use crate::arrival::ArrivalProcess;
use crate::latency::LatencyPanel;
use crate::request::{generate_requests, Request, RequestBody, RequestMix, ServiceTables};

/// Configuration of one service run (shared by both executors and reused
/// per-shard by the fleet driver).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// STM design and metadata placement serving the requests.
    pub stm: StmConfig,
    /// Tasklets serving the request queue (1..=24; 11 fills the pipeline).
    pub tasklets: usize,
    /// Keyspace size: requests draw keys from `0..keys`.
    pub keys: u64,
    /// Requests in the generated stream.
    pub requests: u64,
    /// The arrival process offering the load.
    pub arrival: ArrivalProcess,
    /// Operation mix.
    pub mix: RequestMix,
    /// Key skew.
    pub dist: KeyDist,
    /// Seed for arrivals and payloads.
    pub seed: u64,
    /// Transfer-journal ring capacity.
    pub journal_capacity: u32,
}

impl ServiceConfig {
    /// A small, WRAM-metadata default configuration offering `arrival`
    /// traffic: 11 tasklets, 1024 keys, 2048 requests, read-mostly mix.
    ///
    /// The per-tasklet log capacities (64 reads / 32 writes) are sized so
    /// that even a full 24-tasklet pool fits WRAM alongside the lock table;
    /// the ¼-load-factor tables keep probe chains far below the read-set
    /// capacity (see [`ServiceTables::allocate`]).
    pub fn new(arrival: ArrivalProcess) -> Self {
        ServiceConfig {
            stm: StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram)
                .with_lock_table_entries(256)
                .with_read_set_capacity(64)
                .with_write_set_capacity(32),
            tasklets: 11,
            keys: 1024,
            requests: 2048,
            arrival,
            mix: RequestMix::read_mostly(),
            dist: KeyDist::Uniform,
            seed: 42,
            journal_capacity: 64,
        }
    }

    /// Replaces the STM configuration.
    pub fn with_stm(mut self, stm: StmConfig) -> Self {
        self.stm = stm;
        self
    }

    /// Replaces the tasklet count.
    pub fn with_tasklets(mut self, tasklets: usize) -> Self {
        self.tasklets = tasklets;
        self
    }

    /// Replaces the keyspace size.
    pub fn with_keys(mut self, keys: u64) -> Self {
        self.keys = keys;
        self
    }

    /// Replaces the request count.
    pub fn with_requests(mut self, requests: u64) -> Self {
        self.requests = requests;
        self
    }

    /// Replaces the operation mix.
    pub fn with_mix(mut self, mix: RequestMix) -> Self {
        self.mix = mix;
        self
    }

    /// Replaces the key distribution.
    pub fn with_dist(mut self, dist: KeyDist) -> Self {
        self.dist = dist;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) {
        assert!(self.tasklets >= 1, "a service run needs at least one tasklet");
        assert!(self.requests >= 1, "a service run needs at least one request");
        assert!(self.keys >= 1, "the keyspace must not be empty");
    }
}

/// Unified report of one service run, in the executor's native time domain.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Which executor produced it.
    pub executor: Executor,
    /// The arrival process that offered the load.
    pub arrival: ArrivalProcess,
    /// Requests served to commit.
    pub completed: u64,
    /// Committed transactions (= `completed`).
    pub commits: u64,
    /// Aborted attempts.
    pub aborts: u64,
    /// End-to-end run time in seconds (virtual on the simulator, wall-clock
    /// on threads).
    pub makespan_seconds: f64,
    /// Ticks per second of the panel's time domain (`clock_hz` for cycles,
    /// `1e9` for wall-nanoseconds).
    pub ticks_per_second: f64,
    /// The queueing / service / sojourn latency panel.
    pub panel: LatencyPanel,
}

impl ServiceReport {
    /// Offered load in requests/second (0 for closed-loop).
    pub fn offered_rate(&self) -> f64 {
        self.arrival.offered_rate()
    }

    /// Achieved throughput in requests/second.
    pub fn achieved_rate(&self) -> f64 {
        if self.makespan_seconds > 0.0 {
            self.completed as f64 / self.makespan_seconds
        } else {
            0.0
        }
    }

    /// Abort rate in `[0, 1]`.
    pub fn abort_rate(&self) -> f64 {
        if self.commits + self.aborts == 0 {
            0.0
        } else {
            self.aborts as f64 / (self.commits + self.aborts) as f64
        }
    }

    /// A latency quantile of `which` panel component, in seconds.
    pub fn quantile_seconds(&self, which: PanelComponent, q: f64) -> f64 {
        let hist = match which {
            PanelComponent::Queueing => &self.panel.queueing,
            PanelComponent::Service => &self.panel.service,
            PanelComponent::Sojourn => &self.panel.sojourn,
        };
        hist.seconds(hist.quantile(q), self.ticks_per_second)
    }
}

/// Selects one histogram of a [`LatencyPanel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanelComponent {
    /// `dispatch − arrival`.
    Queueing,
    /// `commit − first attempt`.
    Service,
    /// `commit − arrival`.
    Sojourn,
}

/// What admission hands a tasklet asking for work.
pub(crate) enum Pop {
    /// A due request (closed-loop: arrival rewritten to the dispatch
    /// instant, making queueing delay identically zero).
    Ready(Request),
    /// Nothing due yet; the front request arrives at this global tick.
    Park(u64),
    /// The stream is exhausted.
    Drained,
}

/// The shared admission queue: arrival-ordered requests plus the closed-loop
/// flag. Timestamps are *global* ticks; simulator callers pass their local
/// `base + now`.
pub(crate) struct Admission {
    queue: VecDeque<Request>,
    closed_loop: bool,
}

impl Admission {
    pub(crate) fn new(requests: Vec<Request>, closed_loop: bool) -> Self {
        Admission { queue: requests.into(), closed_loop }
    }

    pub(crate) fn pop_due(&mut self, now: u64) -> Pop {
        match self.queue.front() {
            None => Pop::Drained,
            Some(front) if self.closed_loop || front.arrival <= now => {
                let mut request = self.queue.pop_front().expect("front just checked");
                if self.closed_loop {
                    request.arrival = now;
                }
                Pop::Ready(request)
            }
            Some(front) => Pop::Park(front.arrival),
        }
    }
}

/// One simulated service tasklet: pulls due requests from the shared
/// admission queue, serves each through a step-granular [`RequestBody`]
/// transaction, and records the three-way latency split on commit.
pub(crate) struct ServiceTasklet {
    admission: Rc<RefCell<Admission>>,
    panel: Rc<RefCell<LatencyPanel>>,
    tables: ServiceTables,
    runner: SimTxRunner,
    /// Global tick of this DPU's local cycle 0 (0 for single-DPU runs; the
    /// round start for fleet shards).
    base: u64,
    pending: Option<Request>,
    dispatch: u64,
    body: Option<RequestBody>,
}

impl ServiceTasklet {
    pub(crate) fn new(
        admission: Rc<RefCell<Admission>>,
        panel: Rc<RefCell<LatencyPanel>>,
        tables: ServiceTables,
        machine: TxMachine,
        base: u64,
    ) -> Self {
        ServiceTasklet {
            admission,
            panel,
            tables,
            runner: SimTxRunner::new(machine),
            base,
            pending: None,
            dispatch: 0,
            body: None,
        }
    }
}

impl TaskletProgram for ServiceTasklet {
    fn step(&mut self, ctx: &mut TaskletCtx<'_>) -> StepStatus {
        if self.pending.is_none() {
            let now = self.base + ctx.now();
            return match self.admission.borrow_mut().pop_due(now) {
                Pop::Ready(request) => {
                    self.dispatch = now;
                    self.body = Some(RequestBody::new(self.tables, &request));
                    // Fresh stamps for this request's transaction.
                    self.runner.machine_mut().take_stamps();
                    self.pending = Some(request);
                    StepStatus::Running
                }
                // Park targets are global ticks; the scheduler wants local
                // cycles. `Park` implies the target is past `base + now`.
                Pop::Park(at) => StepStatus::IdleUntil(at.saturating_sub(self.base)),
                Pop::Drained => StepStatus::Finished,
            };
        }
        let body = self.body.as_mut().expect("a pending request always has a body");
        if self.runner.step(ctx, body) == TxStatus::Committed {
            let request = self.pending.take().expect("pending checked above");
            let stamps = self.runner.machine_mut().take_stamps();
            let committed = self.base + stamps.committed.unwrap_or_else(|| ctx.now());
            self.panel.borrow_mut().record(
                self.dispatch.saturating_sub(request.arrival),
                stamps.service_time().unwrap_or(0),
                committed.saturating_sub(request.arrival),
            );
            self.body = None;
        }
        StepStatus::Running
    }

    fn label(&self) -> &str {
        "service-tasklet"
    }
}

/// Outcome of one simulated service round (also the fleet's per-shard
/// building block).
pub(crate) struct SimRound {
    pub(crate) report: DpuRunReport,
    pub(crate) panel: LatencyPanel,
}

/// Serves `requests` on an already-built simulated DPU: one
/// [`ServiceTasklet`] per registered slot, shared admission, scheduler run
/// to drain. `base` is the global tick of local cycle 0.
pub(crate) fn run_sim_round(
    dpu: &mut Dpu,
    shared: &StmShared,
    slots: &[TxSlot],
    tables: ServiceTables,
    requests: Vec<Request>,
    closed_loop: bool,
    base: u64,
) -> SimRound {
    let admission = Rc::new(RefCell::new(Admission::new(requests, closed_loop)));
    let panel = Rc::new(RefCell::new(LatencyPanel::new(TimeDomain::Cycles)));
    let alg = algorithm_for(shared.config().kind);
    let programs: Vec<Box<dyn TaskletProgram>> = slots
        .iter()
        .map(|slot| {
            let machine = TxMachine::new(shared.clone(), slot.clone(), alg);
            Box::new(ServiceTasklet::new(
                Rc::clone(&admission),
                Rc::clone(&panel),
                tables,
                machine,
                base,
            )) as Box<dyn TaskletProgram>
        })
        .collect();
    let report = Scheduler::new().run(dpu, programs);
    let panel = Rc::try_unwrap(panel).expect("programs dropped by the scheduler").into_inner();
    SimRound { report, panel }
}

/// Runs the service on the deterministic simulator. Latencies are in cycles.
///
/// # Panics
///
/// Panics when the configuration is infeasible (empty stream/keyspace, STM
/// metadata that does not fit the DPU).
pub fn run_service_sim(config: &ServiceConfig) -> ServiceReport {
    config.validate();
    let mut dpu = Dpu::new(DpuConfig::default());
    let clock_hz = dpu.latency().clock_hz;
    let shared =
        StmShared::allocate(&mut dpu, config.stm).expect("service STM metadata must fit the DPU");
    let tables =
        ServiceTables::allocate(&mut dpu, Tier::Mram, config.keys, config.journal_capacity)
            .expect("service tables must fit MRAM");
    let slots: Vec<TxSlot> = (0..config.tasklets)
        .map(|t| shared.register_tasklet(&mut dpu, t).expect("per-tasklet logs must fit"))
        .collect();
    let requests = generate_requests(
        config.arrival,
        config.mix,
        config.dist,
        config.keys,
        config.requests,
        config.seed,
        clock_hz as f64,
    );
    let closed_loop = config.arrival.is_closed_loop();
    let round = run_sim_round(&mut dpu, &shared, &slots, tables, requests, closed_loop, 0);
    ServiceReport {
        executor: Executor::Simulator,
        arrival: config.arrival,
        completed: round.panel.completed(),
        commits: round.report.total_commits(),
        aborts: round.report.total_aborts(),
        makespan_seconds: round.report.makespan_seconds(),
        ticks_per_second: clock_hz as f64,
        panel: round.panel,
    }
}

/// Runs the service on the threaded executor. Latencies are in wall-clock
/// nanoseconds (same process-wide epoch as the engine's commit stamps).
///
/// # Panics
///
/// Panics when the configuration is infeasible (too many tasklets, STM
/// metadata that does not fit).
pub fn run_service_threaded(config: &ServiceConfig) -> ServiceReport {
    config.validate();
    let mut dpu = ThreadedDpu::new(config.stm).expect("threaded DPU must build");
    let tables =
        ServiceTables::allocate(&mut dpu, Tier::Mram, config.keys, config.journal_capacity)
            .expect("service tables must fit");
    let mut requests = generate_requests(
        config.arrival,
        config.mix,
        config.dist,
        config.keys,
        config.requests,
        config.seed,
        1e9,
    );
    let closed_loop = config.arrival.is_closed_loop();
    let start = wall_clock_nanos();
    // Anchor the stream slightly in the future so early arrivals are not
    // already late before the tasklet threads exist.
    let base = start + 200_000;
    for request in &mut requests {
        request.arrival = request.arrival.saturating_add(base);
    }
    let admission = Mutex::new(Admission::new(requests, closed_loop));
    let panel = Mutex::new(LatencyPanel::new(TimeDomain::WallNanos));
    let report = dpu
        .run(config.tasklets, |mut tasklet| loop {
            let next = {
                let mut adm = admission.lock().expect("admission lock");
                match adm.pop_due(wall_clock_nanos()) {
                    Pop::Ready(request) => Ok(request),
                    Pop::Park(at) => Err(Some(at)),
                    Pop::Drained => Err(None),
                }
            };
            match next {
                Ok(mut request) => {
                    let dispatch = wall_clock_nanos();
                    if closed_loop {
                        // Queueing is zero *by definition* in closed loop;
                        // real nanoseconds tick between admission and here,
                        // so re-anchor the arrival on the dispatch stamp.
                        request.arrival = dispatch;
                    }
                    let mut body = RequestBody::new(tables, &request);
                    run_tx_body(&mut tasklet, &mut body);
                    let stamps = tasklet.last_tx_stamps();
                    let committed = stamps.committed.unwrap_or(dispatch);
                    panel.lock().expect("panel lock").record(
                        dispatch.saturating_sub(request.arrival),
                        stamps.service_time().unwrap_or(0),
                        committed.saturating_sub(request.arrival),
                    );
                }
                Err(Some(due)) => {
                    let gap = due.saturating_sub(wall_clock_nanos());
                    if gap > 100_000 {
                        // Sleep most of the gap; the margin absorbs wakeup
                        // jitter and the final stretch is re-polled.
                        std::thread::sleep(Duration::from_nanos(gap - 50_000));
                    } else {
                        std::thread::yield_now();
                    }
                }
                Err(None) => break,
            }
        })
        .expect("threaded service run");
    let makespan_seconds = (wall_clock_nanos() - start) as f64 / 1e9;
    let panel = panel.into_inner().expect("panel lock");
    ServiceReport {
        executor: Executor::Threaded,
        arrival: config.arrival,
        completed: panel.completed(),
        commits: report.commits,
        aborts: report.aborts,
        makespan_seconds,
        ticks_per_second: 1e9,
        panel,
    }
}

/// Runs the service on `executor`.
///
/// # Panics
///
/// Panics when the configuration is infeasible (see the per-executor
/// functions).
pub fn run_service(config: &ServiceConfig, executor: Executor) -> ServiceReport {
    match executor {
        Executor::Simulator => run_service_sim(config),
        Executor::Threaded => run_service_threaded(config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestOp;

    fn poisson_config() -> ServiceConfig {
        ServiceConfig::new(ArrivalProcess::Poisson { rate: 2_000_000.0 })
            .with_tasklets(4)
            .with_keys(128)
            .with_requests(400)
            .with_seed(7)
    }

    #[test]
    fn default_config_fits_the_dpu_even_with_a_full_tasklet_pool() {
        // Regression: the default log capacities once exceeded WRAM past
        // eight tasklets. The stock 11-tasklet default and a full 24-tasklet
        // pool must both allocate and serve traffic.
        for tasklets in [11, 24] {
            let config = ServiceConfig::new(ArrivalProcess::Poisson { rate: 1_000_000.0 })
                .with_tasklets(tasklets)
                .with_requests(200);
            let report = run_service_sim(&config);
            assert_eq!(report.completed, 200, "{tasklets} tasklets must serve the stream");
        }
    }

    #[test]
    fn sim_service_completes_the_stream_with_sane_latencies() {
        let report = run_service_sim(&poisson_config());
        assert_eq!(report.completed, 400);
        assert_eq!(report.commits, 400, "every request commits exactly once");
        assert_eq!(report.panel.queueing.count(), 400);
        assert!(report.makespan_seconds > 0.0);
        let p50 = report.quantile_seconds(PanelComponent::Sojourn, 0.50);
        let p99 = report.quantile_seconds(PanelComponent::Sojourn, 0.99);
        assert!(p99 >= p50 && p50 > 0.0, "p99 {p99} must dominate p50 {p50}");
        // Sojourn dominates both components per the stamp protocol.
        assert!(
            report.panel.sojourn.hist.max()
                >= report.panel.service.hist.max().max(report.panel.queueing.hist.max())
        );
    }

    #[test]
    fn sim_service_is_deterministic_per_seed() {
        let a = run_service_sim(&poisson_config());
        let b = run_service_sim(&poisson_config());
        assert_eq!(a.panel, b.panel, "same seed must give bit-identical histograms");
        assert_eq!(a.makespan_seconds, b.makespan_seconds);
        let c = run_service_sim(&poisson_config().with_seed(8));
        assert_ne!(a.panel, c.panel, "a different seed must change the run");
    }

    #[test]
    fn closed_loop_has_identically_zero_queueing_delay() {
        let config = ServiceConfig::new(ArrivalProcess::ClosedLoop)
            .with_tasklets(4)
            .with_keys(64)
            .with_requests(300);
        let report = run_service_sim(&config);
        assert_eq!(report.completed, 300);
        assert_eq!(report.panel.queueing.hist.max(), 0, "closed loop must never queue");
        assert_eq!(report.panel.queueing.count(), 300);
        assert!(report.panel.service.hist.max() > 0);
    }

    #[test]
    fn overload_shows_up_as_queueing_delay() {
        // Offered load far above a single DPU's capacity: queueing must
        // dominate service time at the tail.
        let over = run_service_sim(
            &poisson_config().with_requests(600).with_seed(3).with_arrival_rate(50_000_000.0),
        );
        // Very low load: queueing stays near zero.
        let under = run_service_sim(
            &poisson_config().with_requests(200).with_seed(3).with_arrival_rate(1_000.0),
        );
        assert!(
            over.panel.queueing.quantile(0.95) > under.panel.queueing.quantile(0.95),
            "overload p95 queueing {} must exceed underload {}",
            over.panel.queueing.quantile(0.95),
            under.panel.queueing.quantile(0.95)
        );
        assert_eq!(under.panel.queueing.quantile(0.50), 0, "underload median queueing is zero");
    }

    impl ServiceConfig {
        /// Test helper: swap the open-loop rate in place.
        fn with_arrival_rate(mut self, rate: f64) -> Self {
            self.arrival = ArrivalProcess::Poisson { rate };
            self
        }
    }

    #[test]
    fn threaded_service_serves_the_same_stream() {
        let config = ServiceConfig::new(ArrivalProcess::Poisson { rate: 500_000.0 })
            .with_tasklets(3)
            .with_keys(64)
            .with_requests(150);
        let report = run_service_threaded(&config);
        assert_eq!(report.completed, 150);
        assert_eq!(report.commits, 150);
        assert_eq!(report.panel.queueing.time_domain, TimeDomain::WallNanos);
        assert!(report.makespan_seconds > 0.0);
        assert!(report.panel.sojourn.quantile(0.99) >= report.panel.sojourn.quantile(0.50));
    }

    #[test]
    fn threaded_closed_loop_queueing_is_zero() {
        let config = ServiceConfig::new(ArrivalProcess::ClosedLoop)
            .with_tasklets(2)
            .with_keys(64)
            .with_requests(100);
        let report = run_service_threaded(&config);
        assert_eq!(report.completed, 100);
        assert_eq!(report.panel.queueing.hist.max(), 0);
    }

    #[test]
    fn service_preserves_balance_conservation_across_transfers() {
        // Pure transfer mix on a seeded map: puts first (to fund), then
        // transfers only — total balance must be conserved by construction
        // of the transactional transfer. We check via the journal being
        // populated and every commit accounted.
        let config = ServiceConfig::new(ArrivalProcess::Poisson { rate: 1_000_000.0 })
            .with_tasklets(4)
            .with_keys(32)
            .with_requests(300)
            .with_mix(RequestMix { get: 0, put: 1, transfer: 1 });
        let report = run_service_sim(&config);
        assert_eq!(report.completed, 300);
        assert!(report.aborts > 0 || report.commits == 300, "accounting must close");
    }

    #[test]
    fn mix_generation_obeys_the_requested_shape() {
        let requests = generate_requests(
            ArrivalProcess::ClosedLoop,
            RequestMix { get: 1, put: 0, transfer: 0 },
            KeyDist::Uniform,
            16,
            64,
            1,
            1e9,
        );
        assert!(requests.iter().all(|r| r.op == RequestOp::Get));
    }
}
