//! Service requests: operation mixes, seeded request streams, and the
//! cross-executor transaction body that serves one request.
//!
//! A request stream is generated **up front** from one seed — arrival
//! timestamps from [`ArrivalGen`] (stream 0) and
//! payloads (operation, keys, value) from an independent fork (stream 1) —
//! so the same `(seed, mix, dist, keys, count)` tuple produces bit-identical
//! streams on the simulator, the threaded executor and every fleet shard
//! layout. Keys are drawn through [`KeySampler`], reusing the simulator's
//! zipfian machinery for skewed service traffic.

use pim_sim::{AllocError, KeyDist, KeySampler, SimRng, Tier};
use pim_stm::shared::MetadataAllocator;
use pim_stm::{Abort, TxOps};
use pim_workloads::{BodyStep, MapFull, TxBody, TxHashMap, TxQueue};

use crate::arrival::{ArrivalGen, ArrivalProcess};

/// One service operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOp {
    /// Point lookup in the service hashmap.
    Get,
    /// Insert-or-update in the service hashmap.
    Put,
    /// Balance transfer between two keys, journalled in the service queue.
    Transfer,
}

/// A weighted get/put/transfer operation mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestMix {
    /// Weight of [`RequestOp::Get`].
    pub get: u32,
    /// Weight of [`RequestOp::Put`].
    pub put: u32,
    /// Weight of [`RequestOp::Transfer`].
    pub transfer: u32,
}

impl RequestMix {
    /// The default read-mostly service mix (80% get / 15% put / 5% transfer).
    pub fn read_mostly() -> Self {
        RequestMix { get: 80, put: 15, transfer: 5 }
    }

    /// Parses a `--mix get:put:transfer` weight triple, e.g. `50:30:20`.
    ///
    /// # Errors
    ///
    /// Returns a message when the shape is not three `:`-separated
    /// non-negative integers with a positive sum.
    pub fn parse(text: &str) -> Result<Self, String> {
        let parts: Vec<&str> = text.split(':').collect();
        let [get, put, transfer] = parts.as_slice() else {
            return Err(format!("mix must be get:put:transfer weights, got {text:?}"));
        };
        let weight = |s: &str| s.parse::<u32>().map_err(|_| format!("bad mix weight {s:?}"));
        let mix = RequestMix { get: weight(get)?, put: weight(put)?, transfer: weight(transfer)? };
        if mix.total() == 0 {
            return Err("mix weights must not all be zero".to_string());
        }
        Ok(mix)
    }

    fn total(&self) -> u32 {
        self.get + self.put + self.transfer
    }

    /// Draws one operation kind with these weights.
    pub fn sample(&self, rng: &mut SimRng) -> RequestOp {
        let draw = rng.next_range(u64::from(self.total()));
        if draw < u64::from(self.get) {
            RequestOp::Get
        } else if draw < u64::from(self.get + self.put) {
            RequestOp::Put
        } else {
            RequestOp::Transfer
        }
    }
}

impl std::fmt::Display for RequestMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}:{}", self.get, self.put, self.transfer)
    }
}

/// One generated service request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Arrival timestamp in the generator's tick domain (0 for closed-loop;
    /// the driver overwrites it with the dispatch instant).
    pub arrival: u64,
    /// What the request does.
    pub op: RequestOp,
    /// Primary key (get/put target, transfer source).
    pub key: u64,
    /// Secondary key (transfer destination; equals `key` otherwise).
    pub key2: u64,
    /// Payload: put value or transfer amount.
    pub value: u64,
}

/// Generates the seeded request stream: `count` requests over `keys` keys,
/// timestamps at `ticks_per_second` resolution. See the
/// [module documentation](self) for the determinism discipline.
pub fn generate_requests(
    process: ArrivalProcess,
    mix: RequestMix,
    dist: KeyDist,
    keys: u64,
    count: u64,
    seed: u64,
    ticks_per_second: f64,
) -> Vec<Request> {
    let mut parent = SimRng::new(seed);
    let arrival_seed = parent.fork(0).next_u64();
    let mut payload = parent.fork(1);
    let mut arrivals = ArrivalGen::new(process, arrival_seed, ticks_per_second);
    let sampler = KeySampler::new(dist, keys.max(1));
    (0..count)
        .map(|_| {
            let arrival = arrivals.next_arrival();
            let op = mix.sample(&mut payload);
            let key = sampler.sample(&mut payload);
            let key2 = if op == RequestOp::Transfer { sampler.sample(&mut payload) } else { key };
            let value = 1 + payload.next_range(100);
            Request { arrival, op, key, key2, value }
        })
        .collect()
}

/// The shared service state one executor serves requests against: the
/// transactional hashmap (key → balance) plus the bounded transfer journal.
#[derive(Debug, Clone, Copy)]
pub struct ServiceTables {
    /// Key → balance store.
    pub map: TxHashMap,
    /// Ring journal of applied transfers (oldest entries evicted when full).
    pub journal: TxQueue,
}

impl ServiceTables {
    /// Allocates the tables in `tier`: a map with ~4 slots per key (load
    /// factor stays below ¼, so worst-case linear-probe chains stay far
    /// below the per-tasklet read-set capacity even when every key is
    /// resident) and a `journal_capacity`-entry journal.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when the tier cannot hold the tables.
    pub fn allocate<A: MetadataAllocator + ?Sized>(
        alloc: &mut A,
        tier: Tier,
        keys: u64,
        journal_capacity: u32,
    ) -> Result<Self, AllocError> {
        let capacity = u32::try_from((keys.max(1)).saturating_mul(4).min(1 << 24))
            .expect("bounded by the min above");
        Ok(ServiceTables {
            map: TxHashMap::allocate(alloc, tier, capacity)?,
            journal: TxQueue::allocate(alloc, tier, journal_capacity)?,
        })
    }

    /// MRAM words the tables occupy (for sizing shard DPUs): two words per
    /// map slot plus occupancy, journal ring plus its two cursors.
    pub fn words(keys: u64, journal_capacity: u32) -> u32 {
        let capacity =
            u32::try_from((keys.max(1)).saturating_mul(4).min(1 << 24)).expect("bounded") as u64;
        let map_slots = capacity.max(2).next_power_of_two();
        (2 * map_slots + 1 + u64::from(journal_capacity.max(1)) + 2) as u32
    }
}

/// Encodes a transfer for the journal: source key in the high 32 bits,
/// destination in the low 32.
fn journal_record(from: u64, to: u64) -> u64 {
    (from << 32) | (to & 0xFFFF_FFFF)
}

/// The [`TxBody`] serving one [`Request`] — written once, driven
/// step-granular on the simulator and looped on the threaded executor.
///
/// Step granularity is one *structure operation* per step (a bounded probe
/// loop), so the discrete-event scheduler interleaves tasklets between the
/// hashmap access and the journal access of a transfer.
#[derive(Debug)]
pub struct RequestBody {
    tables: ServiceTables,
    op: RequestOp,
    key: u64,
    key2: u64,
    value: u64,
    pc: u8,
    /// Whether the in-flight transfer moved funds (recomputed per attempt).
    transferred: bool,
    /// Committed outcome: `Some` once an attempt ran to `Done`.
    outcome: Option<Result<bool, MapFull>>,
}

impl RequestBody {
    /// A body serving `request` against `tables`.
    pub fn new(tables: ServiceTables, request: &Request) -> Self {
        RequestBody {
            tables,
            op: request.op,
            key: request.key,
            key2: request.key2,
            value: request.value,
            pc: 0,
            transferred: false,
            outcome: None,
        }
    }

    /// The committed request outcome: `Ok(true)` when the operation applied
    /// (a get that hit, a put, a funded transfer), `Ok(false)` when it was a
    /// clean miss/denial, `Err(MapFull)` when the table was out of slots.
    /// Meaningful only after the transaction committed.
    pub fn outcome(&self) -> Option<Result<bool, MapFull>> {
        self.outcome
    }
}

impl TxBody for RequestBody {
    fn reset(&mut self) {
        self.pc = 0;
        self.transferred = false;
        self.outcome = None;
    }

    fn step<O: TxOps>(&mut self, tx: &mut O) -> Result<BodyStep, Abort> {
        match (self.op, self.pc) {
            (RequestOp::Get, _) => {
                let hit = self.tables.map.get(tx, self.key)?.is_some();
                self.outcome = Some(Ok(hit));
                Ok(BodyStep::Done)
            }
            (RequestOp::Put, _) => {
                self.outcome = Some(match self.tables.map.put(tx, self.key, self.value)? {
                    Ok(_) => Ok(true),
                    Err(full) => Err(full),
                });
                Ok(BodyStep::Done)
            }
            (RequestOp::Transfer, 0) => {
                match self.tables.map.transfer(tx, self.key, self.key2, self.value)? {
                    Ok(moved) => {
                        self.transferred = moved;
                        self.outcome = Some(Ok(moved));
                    }
                    Err(full) => {
                        self.transferred = false;
                        self.outcome = Some(Err(full));
                    }
                }
                self.pc = 1;
                Ok(BodyStep::Continue)
            }
            (RequestOp::Transfer, _) => {
                if self.transferred {
                    let record = journal_record(self.key, self.key2);
                    if !self.tables.journal.push(tx, record)? {
                        // Ring discipline: evict the oldest entry, then the
                        // freed slot must take the new one.
                        self.tables.journal.pop(tx)?;
                        self.tables.journal.push(tx, record)?;
                    }
                }
                Ok(BodyStep::Done)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_stm::threaded::ThreadedDpu;
    use pim_stm::{MetadataPlacement, StmConfig, StmKind};
    use pim_workloads::run_tx_body;

    #[test]
    fn mix_parse_and_sampling_respect_weights() {
        let mix = RequestMix::parse("50:30:20").unwrap();
        assert_eq!(mix, RequestMix { get: 50, put: 30, transfer: 20 });
        assert!(RequestMix::parse("1:2").is_err());
        assert!(RequestMix::parse("0:0:0").is_err());
        assert!(RequestMix::parse("a:b:c").is_err());
        let mut rng = SimRng::new(11);
        let mut counts = [0u32; 3];
        for _ in 0..3000 {
            match mix.sample(&mut rng) {
                RequestOp::Get => counts[0] += 1,
                RequestOp::Put => counts[1] += 1,
                RequestOp::Transfer => counts[2] += 1,
            }
        }
        assert!((counts[0] as f64 / 3000.0 - 0.5).abs() < 0.05, "get fraction {counts:?}");
        assert!((counts[2] as f64 / 3000.0 - 0.2).abs() < 0.05, "transfer fraction {counts:?}");
        let pure = RequestMix { get: 0, put: 1, transfer: 0 };
        assert_eq!(pure.sample(&mut rng), RequestOp::Put);
    }

    #[test]
    fn generated_streams_are_deterministic_and_well_formed() {
        let process = ArrivalProcess::Poisson { rate: 1e6 };
        let mix = RequestMix::read_mostly();
        let gen = |seed| generate_requests(process, mix, KeyDist::Uniform, 64, 256, seed, 1e9);
        let a = gen(5);
        assert_eq!(a, gen(5));
        assert_ne!(a, gen(6));
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.iter().all(|r| r.key < 64 && r.key2 < 64 && r.value >= 1));
        assert!(a.iter().any(|r| r.op == RequestOp::Transfer));
        // Non-transfer requests keep key2 == key (single draw).
        assert!(a.iter().filter(|r| r.op != RequestOp::Transfer).all(|r| r.key2 == r.key));
    }

    #[test]
    fn request_body_serves_all_ops_on_the_threaded_executor() {
        let cfg = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram)
            .with_lock_table_entries(256)
            .with_read_set_capacity(256)
            .with_write_set_capacity(128);
        let mut dpu = ThreadedDpu::new(cfg).unwrap();
        let tables = ServiceTables::allocate(&mut dpu, Tier::Mram, 32, 4).unwrap();
        let run = |dpu: &mut ThreadedDpu, req: &Request| {
            let body = std::sync::Mutex::new(RequestBody::new(tables, req));
            dpu.run(1, |mut tasklet| {
                run_tx_body(&mut tasklet, &mut *body.lock().unwrap());
            })
            .unwrap();
            body.into_inner().unwrap().outcome().expect("committed body must carry an outcome")
        };
        let put = Request { arrival: 0, op: RequestOp::Put, key: 3, key2: 3, value: 40 };
        assert_eq!(run(&mut dpu, &put), Ok(true));
        let get = Request { arrival: 0, op: RequestOp::Get, key: 3, key2: 3, value: 0 };
        assert_eq!(run(&mut dpu, &get), Ok(true));
        let miss = Request { arrival: 0, op: RequestOp::Get, key: 9, key2: 9, value: 0 };
        assert_eq!(run(&mut dpu, &miss), Ok(false));
        let xfer = Request { arrival: 0, op: RequestOp::Transfer, key: 3, key2: 7, value: 15 };
        assert_eq!(run(&mut dpu, &xfer), Ok(true));
        let broke = Request { arrival: 0, op: RequestOp::Transfer, key: 3, key2: 7, value: 100 };
        assert_eq!(run(&mut dpu, &broke), Ok(false), "underfunded transfer is denied");
        // The funded transfer journalled exactly one record.
        assert_eq!(drain_journal(&mut dpu, tables), vec![(3 << 32) | 7]);
    }

    /// Drains the journal through a single transactional reader.
    fn drain_journal(dpu: &mut ThreadedDpu, tables: ServiceTables) -> Vec<u64> {
        let drained = std::sync::Mutex::new(Vec::new());
        dpu.run(1, |mut tasklet| {
            tasklet.transaction(|v| {
                let mut records = Vec::new();
                while let Some(rec) = tables.journal.pop(v)? {
                    records.push(rec);
                }
                *drained.lock().unwrap() = records;
                Ok(())
            });
        })
        .unwrap();
        drained.into_inner().unwrap()
    }

    #[test]
    fn journal_ring_evicts_oldest_when_full() {
        let cfg = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram)
            .with_lock_table_entries(256)
            .with_read_set_capacity(256)
            .with_write_set_capacity(128);
        let mut dpu = ThreadedDpu::new(cfg).unwrap();
        let tables = ServiceTables::allocate(&mut dpu, Tier::Mram, 32, 2).unwrap();
        let serve = |dpu: &mut ThreadedDpu, req: Request| {
            let body = std::sync::Mutex::new(RequestBody::new(tables, &req));
            dpu.run(1, |mut t| run_tx_body(&mut t, &mut *body.lock().unwrap())).unwrap();
            body.into_inner().unwrap().outcome()
        };
        // Seed key 1 with enough balance for three transfers.
        let seed = Request { arrival: 0, op: RequestOp::Put, key: 1, key2: 1, value: 30 };
        assert_eq!(serve(&mut dpu, seed), Some(Ok(true)));
        for to in [2u64, 3, 4] {
            let xfer = Request { arrival: 0, op: RequestOp::Transfer, key: 1, key2: to, value: 10 };
            assert_eq!(serve(&mut dpu, xfer), Some(Ok(true)));
        }
        // Capacity 2: the (1 → 2) record was evicted, newest two remain.
        assert_eq!(drain_journal(&mut dpu, tables), vec![(1 << 32) | 3, (1 << 32) | 4]);
    }
}
