//! Open-loop arrival processes: seeded, deterministic request timestamps.
//!
//! The classic closed-loop harness (every tasklet fires its next transaction
//! the instant the previous one commits) measures *capacity*, not *latency
//! under load*: there is never a queue, so queueing delay is zero by
//! construction. An **open-loop** generator instead draws arrival timestamps
//! from a stochastic process that does not care how fast the server is — when
//! the offered rate approaches capacity, requests pile up and the latency
//! distribution's tail shows it.
//!
//! [`ArrivalGen`] turns an [`ArrivalProcess`] into a monotone stream of
//! timestamps in an abstract **tick** domain; the caller picks the tick rate
//! (`ticks_per_second`) to match its executor's clock — simulator cycles
//! (`clock_hz`) or wall-clock nanoseconds (`1e9`). The draw discipline is one
//! [`SimRng`] exponential per arrival, so a seeded stream is identical across
//! executors, shard counts and runs.

use pim_sim::SimRng;

/// The stochastic process generating request arrival times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate` requests/second (exponential
    /// inter-arrival times) — the M in M/G/k.
    Poisson {
        /// Mean offered load, requests per second.
        rate: f64,
    },
    /// On/off-modulated Poisson: arrivals come in windows. Each window holds
    /// `burst` expected arrivals; within a window all arrivals land in its
    /// first `duty` fraction (drawn at rate `rate / duty`), the rest of the
    /// window is silent. Long-run offered load is still `rate`.
    Bursty {
        /// Long-run mean offered load, requests per second.
        rate: f64,
        /// Expected arrivals per on/off window (≥ 1).
        burst: f64,
        /// Fraction of each window that receives traffic (`0 < duty ≤ 1`);
        /// `1.0` degenerates to [`ArrivalProcess::Poisson`].
        duty: f64,
    },
    /// No arrival process: a request "arrives" the instant a tasklet is free
    /// to serve it. Queueing delay is identically zero by construction —
    /// this is the legacy capacity-measuring harness, kept as the baseline.
    ClosedLoop,
}

impl ArrivalProcess {
    /// Parses an `--arrival` CLI shape, attaching `rate` (requests/second)
    /// to the open-loop variants: `poisson`, `bursty[:burst[:duty]]`
    /// (defaults `burst = 64`, `duty = 0.2`), or `closed-loop`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an unknown shape, a malformed
    /// parameter, or a non-positive rate on an open-loop shape.
    pub fn parse(text: &str, rate: f64) -> Result<Self, String> {
        let mut parts = text.split(':');
        let shape = parts.next().unwrap_or_default();
        let check_rate = || {
            if rate.is_finite() && rate > 0.0 {
                Ok(())
            } else {
                Err(format!("open-loop arrivals need a positive --rate, got {rate}"))
            }
        };
        let process = match shape {
            "poisson" => {
                check_rate()?;
                ArrivalProcess::Poisson { rate }
            }
            "bursty" => {
                check_rate()?;
                let burst: f64 = match parts.next() {
                    None => 64.0,
                    Some(b) => b.parse().map_err(|_| format!("bad burst size {b:?}"))?,
                };
                let duty: f64 = match parts.next() {
                    None => 0.2,
                    Some(d) => d.parse().map_err(|_| format!("bad duty cycle {d:?}"))?,
                };
                if !(burst >= 1.0 && burst.is_finite()) {
                    return Err(format!("burst size must be >= 1, got {burst}"));
                }
                if !(duty > 0.0 && duty <= 1.0) {
                    return Err(format!("duty cycle must be in (0, 1], got {duty}"));
                }
                ArrivalProcess::Bursty { rate, burst, duty }
            }
            "closed-loop" => ArrivalProcess::ClosedLoop,
            other => {
                return Err(format!(
                    "unknown arrival process {other:?} (expected poisson, bursty[:burst[:duty]] \
                     or closed-loop)"
                ))
            }
        };
        if parts.next().is_some() {
            return Err(format!("trailing arrival parameters in {text:?}"));
        }
        Ok(process)
    }

    /// The long-run offered load in requests/second (`0.0` for
    /// [`ArrivalProcess::ClosedLoop`], which offers no independent load).
    pub fn offered_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } | ArrivalProcess::Bursty { rate, .. } => rate,
            ArrivalProcess::ClosedLoop => 0.0,
        }
    }

    /// Whether this is the closed-loop (no-queue) baseline.
    pub fn is_closed_loop(&self) -> bool {
        matches!(self, ArrivalProcess::ClosedLoop)
    }
}

impl std::fmt::Display for ArrivalProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ArrivalProcess::Poisson { rate } => write!(f, "poisson@{rate}/s"),
            ArrivalProcess::Bursty { rate, burst, duty } => {
                write!(f, "bursty@{rate}/s:{burst}:{duty}")
            }
            ArrivalProcess::ClosedLoop => write!(f, "closed-loop"),
        }
    }
}

/// Seeded generator of monotone arrival timestamps (in ticks) for an
/// [`ArrivalProcess`]. One exponential draw per arrival, independent of
/// everything else — see the [module documentation](self).
#[derive(Debug)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: SimRng,
    ticks_per_second: f64,
    /// Accumulated *on-time* in seconds (for bursty, time with traffic
    /// flowing; for Poisson, just time).
    on_seconds: f64,
}

impl ArrivalGen {
    /// A generator for `process`, drawing from the seeded stream `seed`,
    /// emitting timestamps at `ticks_per_second` resolution.
    pub fn new(process: ArrivalProcess, seed: u64, ticks_per_second: f64) -> Self {
        ArrivalGen { process, rng: SimRng::new(seed), ticks_per_second, on_seconds: 0.0 }
    }

    /// The next arrival timestamp in ticks. Non-decreasing across calls;
    /// always `0` for [`ArrivalProcess::ClosedLoop`] (the driver overwrites
    /// closed-loop arrivals with the dispatch instant).
    pub fn next_arrival(&mut self) -> u64 {
        let (rate_on, real_seconds) = match self.process {
            ArrivalProcess::ClosedLoop => return 0,
            ArrivalProcess::Poisson { rate } => {
                let step = self.exponential(rate);
                self.on_seconds += step;
                (rate, self.on_seconds)
            }
            ArrivalProcess::Bursty { rate, burst, duty } => {
                // Draw in compressed "on time" at the elevated in-burst
                // rate, then re-expand: each window of `burst / rate`
                // seconds real time has `duty` of it on, the rest silent.
                let rate_on = rate / duty;
                let step = self.exponential(rate_on);
                self.on_seconds += step;
                let window = burst / rate;
                let on_window = duty * window;
                let k = (self.on_seconds / on_window).floor();
                let within = self.on_seconds - k * on_window;
                (rate_on, k * window + within)
            }
        };
        debug_assert!(rate_on > 0.0);
        (real_seconds * self.ticks_per_second) as u64
    }

    /// One exponential inter-arrival draw with mean `1 / rate` seconds.
    fn exponential(&mut self, rate: f64) -> f64 {
        // next_f64 ∈ [0, 1) so 1 - u ∈ (0, 1] and ln is finite.
        let u = self.rng.next_f64();
        -(1.0 - u).ln() / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_shapes_and_rejects_garbage() {
        assert_eq!(
            ArrivalProcess::parse("poisson", 1e6).unwrap(),
            ArrivalProcess::Poisson { rate: 1e6 }
        );
        assert_eq!(
            ArrivalProcess::parse("bursty", 5e5).unwrap(),
            ArrivalProcess::Bursty { rate: 5e5, burst: 64.0, duty: 0.2 }
        );
        assert_eq!(
            ArrivalProcess::parse("bursty:16:0.5", 5e5).unwrap(),
            ArrivalProcess::Bursty { rate: 5e5, burst: 16.0, duty: 0.5 }
        );
        assert_eq!(ArrivalProcess::parse("closed-loop", 0.0).unwrap(), ArrivalProcess::ClosedLoop);
        assert!(ArrivalProcess::parse("poisson", 0.0).is_err(), "open loop needs a rate");
        assert!(ArrivalProcess::parse("uniform", 1.0).is_err());
        assert!(ArrivalProcess::parse("bursty:0.5", 1.0).is_err(), "burst < 1");
        assert!(ArrivalProcess::parse("bursty:8:1.5", 1.0).is_err(), "duty > 1");
        assert!(ArrivalProcess::parse("poisson:9", 1.0).is_err(), "trailing params");
    }

    #[test]
    fn poisson_arrivals_are_monotone_deterministic_and_near_rate() {
        let process = ArrivalProcess::Poisson { rate: 1_000_000.0 };
        let draw = |seed| {
            let mut gen = ArrivalGen::new(process, seed, 1e9);
            (0..4096).map(|_| gen.next_arrival()).collect::<Vec<u64>>()
        };
        let a = draw(7);
        assert_eq!(a, draw(7), "same seed, same stream");
        assert_ne!(a, draw(8), "different seed, different stream");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "timestamps must be monotone");
        // 4096 arrivals at 1M/s should take ~4.096 ms of nanosecond ticks.
        let span_seconds = *a.last().unwrap() as f64 / 1e9;
        let implied_rate = 4096.0 / span_seconds;
        assert!(
            (implied_rate - 1e6).abs() / 1e6 < 0.1,
            "implied rate {implied_rate} too far from 1e6"
        );
    }

    #[test]
    fn bursty_compresses_arrivals_into_duty_windows_at_the_same_long_run_rate() {
        let rate = 1_000_000.0;
        let (burst, duty) = (64.0, 0.25);
        let mut gen = ArrivalGen::new(ArrivalProcess::Bursty { rate, burst, duty }, 3, 1e9);
        let arrivals: Vec<u64> = (0..8192).map(|_| gen.next_arrival()).collect();
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        // Long-run rate is preserved.
        let span_seconds = *arrivals.last().unwrap() as f64 / 1e9;
        let implied_rate = 8192.0 / span_seconds;
        assert!((implied_rate - rate).abs() / rate < 0.1, "long-run rate {implied_rate}");
        // Every arrival lands in the on-fraction of its window.
        let window_ticks = burst / rate * 1e9;
        let on_ticks = duty * window_ticks;
        for &t in &arrivals {
            let within = t as f64 % window_ticks;
            // One-tick slack for the float → tick truncation at boundaries.
            assert!(within <= on_ticks + 1.0, "arrival {t} outside the on-window");
        }
    }

    #[test]
    fn closed_loop_offers_no_timestamps() {
        let mut gen = ArrivalGen::new(ArrivalProcess::ClosedLoop, 1, 1e9);
        assert_eq!(gen.next_arrival(), 0);
        assert_eq!(gen.next_arrival(), 0);
        assert_eq!(ArrivalProcess::ClosedLoop.offered_rate(), 0.0);
        assert!(ArrivalProcess::ClosedLoop.is_closed_loop());
    }
}
