//! Latency-under-load accounting: domain-tagged histograms and the
//! three-way queueing / service / sojourn panel.
//!
//! Every committed request contributes three durations, cut at the stamps
//! the engine records (`arrival → dispatch → first-attempt → commit`):
//!
//! * **queueing** — `dispatch − arrival`: time spent waiting for a free
//!   tasklet (plus, on the fleet, for the owning shard's round to start).
//!   Identically zero under closed-loop arrivals.
//! * **service** — `commit − first-attempt`: time inside the STM, *including
//!   every aborted retry* — this is where contention shows up.
//! * **sojourn** — `commit − arrival`: what the client sees (≥ both above).
//!
//! Histograms are [`LatencyHistogram`]s (log-bucketed, merge-closed) tagged
//! with the executor's [`TimeDomain`], mirroring
//! [`pim_stm::profile::ExecProfile`]: merging across domains is a bug, not a
//! unit conversion, and panics.

use pim_sim::LatencyHistogram;
use pim_stm::profile::TimeDomain;
use serde::{Deserialize, Serialize};

/// A [`LatencyHistogram`] that knows which clock its samples came from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceHistogram {
    /// The clock domain of every recorded sample.
    pub time_domain: TimeDomain,
    /// The underlying log-bucketed histogram.
    pub hist: LatencyHistogram,
}

impl ServiceHistogram {
    /// An empty histogram for `time_domain` samples.
    pub fn new(time_domain: TimeDomain) -> Self {
        ServiceHistogram { time_domain, hist: LatencyHistogram::new() }
    }

    /// Records one duration (in this histogram's domain ticks).
    pub fn record(&mut self, value: u64) {
        self.hist.record(value);
    }

    /// Folds `other` into `self` (exact, like the underlying histogram).
    ///
    /// # Panics
    ///
    /// Panics when the domains differ — cycles and wall-nanoseconds must
    /// never be pooled.
    pub fn merge(&mut self, other: &ServiceHistogram) {
        assert_eq!(
            self.time_domain, other.time_domain,
            "merging {} and {} service histograms",
            self.time_domain, other.time_domain
        );
        self.hist.merge(&other.hist);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// A quantile in domain ticks (see [`LatencyHistogram::quantile`]).
    pub fn quantile(&self, q: f64) -> u64 {
        self.hist.quantile(q)
    }

    /// Converts a tick value to seconds at `ticks_per_second`.
    pub fn seconds(&self, ticks: u64, ticks_per_second: f64) -> f64 {
        ticks as f64 / ticks_per_second
    }
}

/// The three-way latency panel of one service run: queueing, service and
/// sojourn histograms over the same committed requests, in one domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyPanel {
    /// `dispatch − arrival` per request.
    pub queueing: ServiceHistogram,
    /// `commit − first attempt` per request (STM time incl. retries).
    pub service: ServiceHistogram,
    /// `commit − arrival` per request (end-to-end).
    pub sojourn: ServiceHistogram,
}

impl LatencyPanel {
    /// An empty panel in `time_domain`.
    pub fn new(time_domain: TimeDomain) -> Self {
        LatencyPanel {
            queueing: ServiceHistogram::new(time_domain),
            service: ServiceHistogram::new(time_domain),
            sojourn: ServiceHistogram::new(time_domain),
        }
    }

    /// The panel's clock domain.
    pub fn time_domain(&self) -> TimeDomain {
        self.queueing.time_domain
    }

    /// Records one committed request's three durations.
    pub fn record(&mut self, queueing: u64, service: u64, sojourn: u64) {
        self.queueing.record(queueing);
        self.service.record(service);
        self.sojourn.record(sojourn);
    }

    /// Number of committed requests recorded.
    pub fn completed(&self) -> u64 {
        self.sojourn.count()
    }

    /// Folds `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics when the domains differ (see [`ServiceHistogram::merge`]).
    pub fn merge(&mut self, other: &LatencyPanel) {
        self.queueing.merge(&other.queueing);
        self.service.merge(&other.service);
        self.sojourn.merge(&other.sojourn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_records_and_merges_per_component() {
        let mut a = LatencyPanel::new(TimeDomain::Cycles);
        a.record(10, 100, 110);
        a.record(0, 50, 50);
        let mut b = LatencyPanel::new(TimeDomain::Cycles);
        b.record(1000, 200, 1200);
        a.merge(&b);
        assert_eq!(a.completed(), 3);
        assert_eq!(a.queueing.count(), 3);
        assert_eq!(a.sojourn.hist.max(), 1200);
        assert!(a.sojourn.quantile(0.99) >= a.sojourn.quantile(0.50));
    }

    #[test]
    #[should_panic(expected = "merging")]
    fn cross_domain_merge_panics() {
        let mut cycles = ServiceHistogram::new(TimeDomain::Cycles);
        let nanos = ServiceHistogram::new(TimeDomain::WallNanos);
        cycles.merge(&nanos);
    }

    #[test]
    fn seconds_conversion_uses_the_given_tick_rate() {
        let h = ServiceHistogram::new(TimeDomain::Cycles);
        assert!((h.seconds(350, 350e6) - 1e-6).abs() < 1e-12);
    }
}
