//! Fleet service runs: the open-loop stream routed across sharded DPUs.
//!
//! One global request stream is generated exactly as for a single DPU, then
//! **routed by key ownership** ([`ShardMap::owner`]) to per-shard simulated
//! DPUs, round by round, with the host's broadcast/scatter/gather costs
//! charged through the same [`TransferLedger`] / [`HostCostModel`] the
//! `pim-fleet` runtime uses. Each shard serves its slice of a round through
//! the same admission + [`ServiceTasklet`](crate::single) machinery as the
//! single-DPU driver; per-round latencies are anchored to the fleet's global
//! clock (the round's start tick), so queueing delay includes time spent
//! waiting for the owning shard's round to begin — the round-barrier penalty
//! the latency-vs-load curve is supposed to expose.
//!
//! Two deliberate simplifications keep the service fleet inside the measured
//! runtime's scope:
//!
//! * **Owner-local transfers** — a transfer whose destination key lives on a
//!   different shard is remapped into the owner's key range (deterministic
//!   fold, same stream position). Cross-shard two-phase service transactions
//!   stay with the roadmap's open 2PC item.
//! * **Authoritative copy at the owner** — every shard's hashmap covers the
//!   full keyspace; a rebalance boundary copies moved keys from the old
//!   owner to the new one (host-side, charged at
//!   [`MIGRATION_BYTES_PER_KEY`]). Stale copies on former owners are
//!   unreachable (requests route to the current owner) and are overwritten
//!   if ownership ever returns.

use std::collections::VecDeque;

use pim_sim::{CpuTransferModel, Dpu, DpuConfig, Tier};
use pim_stm::{StmShared, TimeDomain, TxSlot};
use pim_workloads::{GlobalTx, ShardMap};

use pim_fleet::runtime::{GATHER_SUMMARY_BYTES, MIGRATION_BYTES_PER_KEY, ROUND_DESCRIPTOR_BYTES};
use pim_fleet::{HostCostModel, RebalancePolicy, Rebalancer, TransferLedger};

use crate::arrival::ArrivalProcess;
use crate::latency::LatencyPanel;
use crate::request::{generate_requests, Request, RequestOp, ServiceTables};
use crate::single::{run_sim_round, ServiceConfig};

/// Wire bytes of one routed request descriptor (arrival stamp + packed
/// op/keys/value), for scatter accounting.
pub const REQUEST_WIRE_BYTES: u64 = 32;

/// Configuration of a fleet service run.
#[derive(Debug, Clone)]
pub struct ServiceFleetConfig {
    /// The per-shard service configuration (STM design, tasklets, keyspace,
    /// stream length, arrivals, mix, skew, seed). `keys` is the *global*
    /// keyspace, partitioned over the shards.
    pub service: ServiceConfig,
    /// Number of shards (DPUs).
    pub shards: u32,
    /// Requests dispatched per round.
    pub round_requests: u32,
    /// Skew-adaptive rebalancing policy between rounds.
    pub rebalance: RebalancePolicy,
    /// Whether a round's host pre-work may overlap the previous round's
    /// compute (the fleet pipeline).
    pub overlap: bool,
    /// Host↔DPU transfer cost model.
    pub transfer: CpuTransferModel,
    /// Host-side routing/merge cost model.
    pub host: HostCostModel,
}

impl ServiceFleetConfig {
    /// A fleet of `shards` DPUs serving `service`, 256 requests per round,
    /// no rebalancing, serial host.
    pub fn new(service: ServiceConfig, shards: u32) -> Self {
        ServiceFleetConfig {
            service,
            shards,
            round_requests: 256,
            rebalance: RebalancePolicy::Off,
            overlap: false,
            transfer: CpuTransferModel::default(),
            host: HostCostModel::default(),
        }
    }

    /// Replaces the rebalancing policy.
    pub fn with_rebalance(mut self, rebalance: RebalancePolicy) -> Self {
        self.rebalance = rebalance;
        self
    }

    /// Enables or disables the host/compute pipeline.
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Replaces the round batch size.
    pub fn with_round_requests(mut self, round_requests: u32) -> Self {
        self.round_requests = round_requests;
        self
    }

    fn validate(&self) {
        assert!(self.shards >= 1, "a fleet needs at least one shard");
        assert!(self.round_requests >= 1, "rounds must dispatch at least one request");
        assert!(
            self.service.keys <= 1 << 20,
            "fleet service keyspace capped at 2^20 keys (got {})",
            self.service.keys
        );
        assert!(
            u64::from(self.shards) <= self.service.keys,
            "more shards than keys cannot be partitioned"
        );
    }
}

/// One shard of the service fleet: a persistent simulated DPU with its own
/// STM instance and service tables (full-keyspace map, see the
/// [module documentation](self)).
struct ServiceShard {
    dpu: Dpu,
    shared: StmShared,
    slots: Vec<TxSlot>,
    tables: ServiceTables,
    completed: u64,
}

impl ServiceShard {
    fn new(config: &ServiceConfig) -> Self {
        let stm = config.stm;
        let table_words = ServiceTables::words(config.keys, config.journal_capacity);
        let mram_words = table_words
            + stm.shared_metadata_words()
            + stm.per_tasklet_metadata_words() * config.tasklets as u32
            + 2048;
        let mut dpu = Dpu::new(DpuConfig { mram_words, ..DpuConfig::default() });
        let shared =
            StmShared::allocate(&mut dpu, stm).expect("shard STM metadata must fit the sized DPU");
        let tables =
            ServiceTables::allocate(&mut dpu, Tier::Mram, config.keys, config.journal_capacity)
                .expect("service tables must fit the sized DPU");
        let slots = (0..config.tasklets)
            .map(|t| shared.register_tasklet(&mut dpu, t).expect("per-tasklet logs must fit"))
            .collect();
        ServiceShard { dpu, shared, slots, tables, completed: 0 }
    }
}

/// Report of one fleet service run. Latencies are global simulator cycles.
#[derive(Debug, Clone)]
pub struct ServiceFleetReport {
    /// Shard count.
    pub shards: u32,
    /// Rounds dispatched.
    pub rounds: u64,
    /// Requests served to commit.
    pub completed: u64,
    /// Committed transactions across all shards.
    pub commits: u64,
    /// Aborted attempts across all shards.
    pub aborts: u64,
    /// End-to-end pipelined makespan in seconds (compute + exposed host).
    pub makespan_seconds: f64,
    /// Per-round max shard compute, summed (includes open-loop idle waits).
    pub dpu_seconds: f64,
    /// Host pre/post work actually exposed on the critical path.
    pub host_seconds: f64,
    /// Host pre-work hidden by the pipeline.
    pub hidden_seconds: f64,
    /// Rebalance recuts taken.
    pub rebalances: u64,
    /// Keys copied across shards at rebalance boundaries.
    pub migrated_keys: u64,
    /// Requests served per shard (by final routing).
    pub per_shard_completed: Vec<u64>,
    /// Ticks per second of the panel's (cycle) domain.
    pub ticks_per_second: f64,
    /// The arrival process that offered the load.
    pub arrival: ArrivalProcess,
    /// Merged queueing / service / sojourn panel, global clock.
    pub panel: LatencyPanel,
}

impl ServiceFleetReport {
    /// Offered load in requests/second (0 for closed-loop).
    pub fn offered_rate(&self) -> f64 {
        self.arrival.offered_rate()
    }

    /// Achieved throughput in requests/second.
    pub fn achieved_rate(&self) -> f64 {
        if self.makespan_seconds > 0.0 {
            self.completed as f64 / self.makespan_seconds
        } else {
            0.0
        }
    }

    /// Abort rate in `[0, 1]`.
    pub fn abort_rate(&self) -> f64 {
        if self.commits + self.aborts == 0 {
            0.0
        } else {
            self.aborts as f64 / (self.commits + self.aborts) as f64
        }
    }
}

/// The load-tracking view of a routed request (what the rebalancer sees).
fn as_global_tx(id: u32, request: &Request) -> GlobalTx {
    match request.op {
        RequestOp::Get => GlobalTx { id, reads: vec![request.key as u32], updates: Vec::new() },
        RequestOp::Put => GlobalTx { id, reads: Vec::new(), updates: vec![request.key as u32] },
        RequestOp::Transfer => GlobalTx {
            id,
            reads: Vec::new(),
            updates: vec![request.key as u32, request.key2 as u32],
        },
    }
}

/// Folds a transfer destination into the owning shard's key range (see the
/// module notes on owner-local transfers).
fn localize(request: &Request, map: &ShardMap, shard: u32) -> Request {
    if request.op != RequestOp::Transfer {
        return *request;
    }
    let base = u64::from(map.base(shard));
    let span = u64::from(map.span(shard));
    if map.owner(request.key2 as u32) == shard {
        return *request;
    }
    Request { key2: base + request.key2 % span.max(1), ..*request }
}

/// Runs the service fleet to stream exhaustion.
///
/// # Panics
///
/// Panics when the configuration is infeasible (see
/// `ServiceFleetConfig::validate` assertions and per-shard allocation).
pub fn run_service_fleet(config: &ServiceFleetConfig) -> ServiceFleetReport {
    config.validate();
    let service = &config.service;
    let total_keys = service.keys as u32;
    let mut map = ShardMap::new(total_keys, config.shards);
    let mut shards: Vec<ServiceShard> =
        (0..config.shards).map(|_| ServiceShard::new(service)).collect();
    let clock_hz = shards[0].dpu.latency().clock_hz;
    let closed_loop = service.arrival.is_closed_loop();

    let stream = generate_requests(
        service.arrival,
        service.mix,
        service.dist,
        service.keys,
        service.requests,
        service.seed,
        clock_hz as f64,
    );
    let mut pending: VecDeque<(u32, Request)> =
        stream.into_iter().enumerate().map(|(i, r)| (i as u32, r)).collect();

    let mut ledger = TransferLedger::new(config.transfer);
    let mut rebalancer = Rebalancer::new(config.rebalance, total_keys);
    let mut panel = LatencyPanel::new(TimeDomain::Cycles);
    let mut commits = 0u64;
    let mut aborts = 0u64;
    let mut rounds = 0u64;
    let mut rebalances = 0u64;
    let mut migrated_keys = 0u64;
    let mut makespan = 0.0f64;
    let mut dpu_seconds = 0.0f64;
    let mut host_exposed = 0.0f64;
    let mut hidden_total = 0.0f64;
    let mut prev_compute = 0.0f64;
    let mut migrated_last_boundary = false;

    while !pending.is_empty() {
        // --- Host dispatch: route this round's batch by current ownership.
        let mut batches: Vec<Vec<Request>> = (0..config.shards).map(|_| Vec::new()).collect();
        let take = (config.round_requests as usize).min(pending.len());
        for _ in 0..take {
            let (id, request) = pending.pop_front().expect("bounded by pending.len()");
            rebalancer.note(&as_global_tx(id, &request));
            let shard = map.owner(request.key as u32);
            batches[shard as usize].push(localize(&request, &map, shard));
        }
        let dispatched: u64 = batches.iter().map(|b| b.len() as u64).sum();

        // --- Host pre-work: descriptor broadcast + request scatter + route.
        let broadcast_seconds = ledger.broadcast(ROUND_DESCRIPTOR_BYTES);
        let scatter_bytes: Vec<u64> =
            batches.iter().map(|b| b.len() as u64 * REQUEST_WIRE_BYTES).collect();
        let scatter_seconds = ledger.scatter(&scatter_bytes);
        let pre_seconds =
            broadcast_seconds + scatter_seconds + config.host.route_seconds(dispatched);

        // Pipeline: this round's pre-work hides under the previous round's
        // compute unless a migration just rewrote shard contents.
        let overlapped = config.overlap && rounds > 0 && !migrated_last_boundary;
        let hidden = if overlapped { pre_seconds.min(prev_compute) } else { 0.0 };
        hidden_total += hidden;
        host_exposed += pre_seconds - hidden;
        makespan += pre_seconds - hidden;

        // --- Compute: each active shard serves its slice, anchored at the
        // global round-start tick so latencies compose across rounds.
        let base_ticks = (makespan * clock_hz as f64) as u64;
        let mut compute = 0.0f64;
        let mut active = 0u64;
        for (s, shard) in shards.iter_mut().enumerate() {
            if batches[s].is_empty() {
                continue;
            }
            active += 1;
            let batch = std::mem::take(&mut batches[s]);
            shard.completed += batch.len() as u64;
            let round = run_sim_round(
                &mut shard.dpu,
                &shard.shared,
                &shard.slots,
                shard.tables,
                batch,
                closed_loop,
                base_ticks,
            );
            commits += round.report.total_commits();
            aborts += round.report.total_aborts();
            compute = compute.max(round.report.makespan_seconds());
            panel.merge(&round.panel);
        }
        dpu_seconds += compute;
        makespan += compute;

        // --- Host post-work: gather per-shard summaries and merge.
        let gather_bytes: Vec<u64> = (0..config.shards)
            .map(|s| if shards[s as usize].completed > 0 { GATHER_SUMMARY_BYTES } else { 0 })
            .collect();
        let gather_seconds = ledger.gather(&gather_bytes);
        let post_seconds = gather_seconds + config.host.merge_seconds(active);
        host_exposed += post_seconds;
        makespan += post_seconds;
        prev_compute = compute;
        rounds += 1;

        // --- Rebalance boundary: recut, then copy moved keys old → new.
        migrated_last_boundary = false;
        if let Some(new_map) = rebalancer.plan(&map, !pending.is_empty()) {
            let mut migration_bytes: Vec<u64> = vec![0; config.shards as usize];
            for key in 0..total_keys {
                let old = map.owner(key);
                let new = new_map.owner(key);
                if old == new {
                    continue;
                }
                let value = {
                    let donor = &shards[old as usize];
                    donor.tables.map.host_get(&donor.dpu, u64::from(key))
                };
                if let Some(value) = value {
                    let receiver = &mut shards[new as usize];
                    receiver
                        .tables
                        .map
                        .host_put(&mut receiver.dpu, u64::from(key), value)
                        .expect("full-keyspace shard maps cannot fill");
                    migrated_keys += 1;
                    migration_bytes[new as usize] += MIGRATION_BYTES_PER_KEY;
                }
            }
            let migrate_seconds = ledger.scatter(&migration_bytes);
            host_exposed += migrate_seconds;
            makespan += migrate_seconds;
            map = new_map;
            rebalances += 1;
            migrated_last_boundary = true;
        }
    }

    ServiceFleetReport {
        shards: config.shards,
        rounds,
        completed: panel.completed(),
        commits,
        aborts,
        makespan_seconds: makespan,
        dpu_seconds,
        host_seconds: host_exposed,
        hidden_seconds: hidden_total,
        rebalances,
        migrated_keys,
        per_shard_completed: shards.iter().map(|s| s.completed).collect(),
        ticks_per_second: clock_hz as f64,
        arrival: config.arrival(),
        panel,
    }
}

impl ServiceFleetConfig {
    /// The configured arrival process.
    pub fn arrival(&self) -> ArrivalProcess {
        self.service.arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::KeyDist;

    fn fleet_config() -> ServiceFleetConfig {
        let service = ServiceConfig::new(ArrivalProcess::Poisson { rate: 4_000_000.0 })
            .with_tasklets(3)
            .with_keys(256)
            .with_requests(600)
            .with_seed(11);
        ServiceFleetConfig::new(service, 4).with_round_requests(128)
    }

    #[test]
    fn fleet_serves_the_whole_stream_across_shards() {
        let report = run_service_fleet(&fleet_config());
        assert_eq!(report.completed, 600);
        assert_eq!(report.commits, 600);
        assert_eq!(report.shards, 4);
        assert_eq!(report.rounds, 5, "600 requests at 128/round");
        assert_eq!(report.per_shard_completed.iter().sum::<u64>(), 600);
        assert!(
            report.per_shard_completed.iter().filter(|&&c| c > 0).count() >= 2,
            "uniform traffic must reach multiple shards: {:?}",
            report.per_shard_completed
        );
        assert!(report.makespan_seconds > 0.0);
        assert!(report.host_seconds > 0.0, "host primitives must be charged");
        assert!(report.panel.sojourn.quantile(0.99) >= report.panel.sojourn.quantile(0.50));
    }

    #[test]
    fn fleet_runs_are_deterministic_per_seed() {
        let a = run_service_fleet(&fleet_config());
        let b = run_service_fleet(&fleet_config());
        assert_eq!(a.panel, b.panel);
        assert_eq!(a.makespan_seconds, b.makespan_seconds);
        assert_eq!(a.per_shard_completed, b.per_shard_completed);
    }

    #[test]
    fn fleet_closed_loop_queueing_is_zero() {
        let mut config = fleet_config();
        config.service.arrival = ArrivalProcess::ClosedLoop;
        let report = run_service_fleet(&config);
        assert_eq!(report.completed, 600);
        assert_eq!(report.panel.queueing.hist.max(), 0);
    }

    #[test]
    fn skewed_traffic_with_rebalancing_recuts_and_migrates() {
        let mut config = fleet_config();
        config.service =
            config.service.with_dist(KeyDist::Zipf { theta: 0.99 }).with_requests(1000);
        let config = config
            .with_rebalance(RebalancePolicy::Threshold { max_over_mean: 1.2 })
            .with_round_requests(200);
        let report = run_service_fleet(&config);
        assert_eq!(report.completed, 1000);
        assert!(report.rebalances > 0, "zipf 0.99 must trigger a threshold recut");
        assert!(report.migrated_keys > 0, "a recut must move populated keys");
        // Served counts must balance better than the static cut would under
        // this skew (weak check: nobody serves everything).
        let max = report.per_shard_completed.iter().max().copied().unwrap_or(0);
        assert!(max < 1000, "rebalancing must spread the load: {:?}", report.per_shard_completed);
    }

    #[test]
    fn overlap_hides_prework_without_changing_service_results() {
        let serial = run_service_fleet(&fleet_config());
        let pipelined = run_service_fleet(&fleet_config().with_overlap(true));
        assert_eq!(serial.panel.service, pipelined.panel.service, "compute must be unchanged");
        assert_eq!(serial.completed, pipelined.completed);
        assert_eq!(serial.hidden_seconds, 0.0);
        assert!(pipelined.hidden_seconds > 0.0, "some pre-work must hide");
        let shrink = serial.makespan_seconds - pipelined.makespan_seconds;
        assert!(
            (shrink - pipelined.hidden_seconds).abs() < 1e-12,
            "makespan shrinks by exactly the hidden seconds"
        );
    }

    #[test]
    fn transfer_destinations_are_owner_local() {
        let service = ServiceConfig::new(ArrivalProcess::Poisson { rate: 4_000_000.0 })
            .with_keys(256)
            .with_requests(400)
            .with_mix(crate::request::RequestMix { get: 0, put: 1, transfer: 1 })
            .with_tasklets(2);
        let report = run_service_fleet(&ServiceFleetConfig::new(service, 4));
        assert_eq!(report.completed, 400, "remapped transfers must still all commit");
    }
}
