//! # pim-service — latency under load for the PIM-STM runtimes
//!
//! The paper's harness (and this repo's `pim-exp` experiments) measure
//! *capacity*: closed-loop tasklets that fire the next transaction the
//! moment the previous one commits. That answers "how many transactions per
//! second can a DPU commit" but not the question a service operator asks:
//! **what latency does a client see at a given offered load?** This crate
//! adds the missing service layer, end to end:
//!
//! 1. **Open-loop traffic generation** ([`arrival`]) — seeded, deterministic
//!    arrival timestamps from [`ArrivalProcess::Poisson`],
//!    [`ArrivalProcess::Bursty`] (on/off-modulated Poisson) or the
//!    [`ArrivalProcess::ClosedLoop`] baseline, with zipfian key skew reusing
//!    `pim_sim::skew`.
//! 2. **Request admission** ([`single`]) — a queue in front of each DPU's
//!    tasklet pool. On the simulator an idle tasklet parks with
//!    [`pim_sim::StepStatus::IdleUntil`] until the next arrival (virtual
//!    time advances without charging busy cycles); on the threaded executor
//!    it sleeps until the wall-clock arrival.
//! 3. **Latency accounting** ([`latency`]) — every transaction is stamped
//!    `arrival → dispatch → first attempt → commit` (the engine half lives
//!    in `pim_stm::txslot::TxStamps`), cut into queueing / service / sojourn
//!    [`pim_sim::LatencyHistogram`]s tagged with the executor's
//!    [`pim_stm::TimeDomain`].
//! 4. **Service structures** ([`request`]) — get/put/transfer mixes served
//!    against the transactional hashmap and journal queue of
//!    `pim_workloads::structs`.
//!
//! [`fleet`] scales the same stream across sharded DPUs: arrivals routed by
//! `ShardMap` ownership, per-round global-clock anchoring (so round-barrier
//! waits land in queueing delay), skew-adaptive rebalancing with host-side
//! key migration, and the host pipeline's overlap accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod fleet;
pub mod latency;
pub mod request;
pub mod single;

pub use arrival::{ArrivalGen, ArrivalProcess};
pub use fleet::{run_service_fleet, ServiceFleetConfig, ServiceFleetReport, REQUEST_WIRE_BYTES};
pub use latency::{LatencyPanel, ServiceHistogram};
pub use request::{generate_requests, Request, RequestBody, RequestMix, RequestOp, ServiceTables};
pub use single::{
    run_service, run_service_sim, run_service_threaded, PanelComponent, ServiceConfig,
    ServiceReport,
};
