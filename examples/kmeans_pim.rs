//! KMeans on the simulated DPU: runs the paper's KMeans workload (low and
//! high contention) with two STM designs, prints throughput, abort rate and
//! the time breakdown, and compares against the host CPU baseline — a small
//! end-to-end tour of the §4.2/§4.3 methodology.
//!
//! ```text
//! cargo run --example kmeans_pim
//! ```

use pim_stm_suite::exp::report::fmt_f64;
use pim_stm_suite::host::kmeans::{run as host_run, HostKmeansConfig};
use pim_stm_suite::sim::Phase;
use pim_stm_suite::stm::{MetadataPlacement, StmKind};
use pim_stm_suite::workloads::{RunSpec, Workload};

fn main() {
    println!("KMeans on a simulated DPU (11 tasklets, metadata in WRAM)\n");
    println!(
        "{:<12} {:<12} {:>14} {:>12} {:>10} {:>10}",
        "workload", "stm", "tx/s (sim)", "abort rate", "tx time", "other time"
    );
    for workload in [Workload::KmeansLc, Workload::KmeansHc] {
        for kind in [StmKind::Norec, StmKind::TinyEtlWb, StmKind::VrCtlWb] {
            let report =
                RunSpec::new(workload, kind, MetadataPlacement::Wram, 11).with_scale(0.5).run();
            let breakdown = report.breakdown();
            let tx_time: f64 = Phase::ALL
                .iter()
                .filter(|p| !matches!(p, Phase::OtherExec))
                .map(|&p| breakdown.fraction(p))
                .sum();
            println!(
                "{:<12} {:<12} {:>14} {:>11.1}% {:>9.1}% {:>9.1}%",
                workload.name(),
                kind.name(),
                fmt_f64(report.throughput_tx_per_sec()),
                report.abort_rate() * 100.0,
                tx_time * 100.0,
                breakdown.fraction(Phase::OtherExec) * 100.0,
            );
        }
    }

    println!("\nhost CPU baseline (NOrec, 4 threads, 20k points, 3 rounds):");
    for (label, config) in [
        ("kmeans-lc", HostKmeansConfig::low_contention(20_000, 4)),
        ("kmeans-hc", HostKmeansConfig::high_contention(20_000, 4)),
    ] {
        let result = host_run(&config);
        println!(
            "  {label}: {:.3} s, {} commits, {} aborts",
            result.elapsed_seconds, result.commits, result.aborts
        );
    }
    println!("\nRun `pim-exp --figure fig7` for the full multi-DPU speed-up study.");
}
