//! Design-space tour: sweep every STM design over a workload of your choice
//! and print the three panels the paper plots (throughput, abort rate, time
//! breakdown), for both metadata placements.
//!
//! ```text
//! cargo run --example design_space [workload] [scale]
//! cargo run --example design_space list-hc 0.5
//! ```

use pim_stm_suite::exp::design_space::DesignSpaceSweep;
use pim_stm_suite::stm::MetadataPlacement;
use pim_stm_suite::workloads::Workload;

fn main() {
    let workload = std::env::args()
        .nth(1)
        .map(|name| {
            Workload::parse(&name).unwrap_or_else(|| {
                panic!(
                    "unknown workload {name:?}; expected one of {:?}",
                    Workload::ALL.map(|w| w.name())
                )
            })
        })
        .unwrap_or(Workload::ArrayB);
    let scale: f64 =
        std::env::args().nth(2).map(|s| s.parse().expect("scale must be a number")).unwrap_or(0.25);
    let tasklets = [1, 3, 5, 7, 9, 11];

    println!("design-space sweep for {workload} ({}), scale {scale}\n", workload.figure());
    for placement in [MetadataPlacement::Mram, MetadataPlacement::Wram] {
        if placement == MetadataPlacement::Wram && !workload.supports_wram_metadata() {
            println!("(skipping WRAM metadata: {workload}'s transaction logs exceed 64 KB)\n");
            continue;
        }
        println!("--- metadata in {placement} ---");
        let sweep = DesignSpaceSweep::run(workload, placement, &tasklets, scale, 42);
        println!("{}", sweep.throughput_table());
        println!("{}", sweep.abort_table());
        println!("{}", sweep.breakdown_table());
        println!("best design at peak throughput: {}\n", sweep.best_design().name());
    }
}
