//! A transactional "bank" on one DPU: tasklets transfer money between
//! accounts stored in MRAM while an auditing transaction repeatedly checks
//! that the total balance is preserved — the canonical STM demo, here
//! running on the threaded executor so the concurrency is real.
//!
//! The transaction bodies are written once against the typed, executor-
//! agnostic [`TxOps`] facade (`TVar`/`TArray`); the same functions drive the
//! cycle-accounted simulator in `tests/typed_facade.rs`.
//!
//! ```text
//! cargo run --example bank [stm-kind]       # e.g. `cargo run --example bank vr-etlwt`
//! ```

use pim_stm_suite::stm::threaded::ThreadedDpu;
use pim_stm_suite::stm::{Abort, MetadataPlacement, StmConfig, StmKind, TArray, Tier, TxOps};

const ACCOUNTS: u32 = 64;
const INITIAL_BALANCE: u64 = 1_000;
const TRANSFERS_PER_TASKLET: u32 = 2_000;
const TASKLETS: usize = 8;

/// Moves one unit between two accounts. Generic over the executor.
fn transfer<O: TxOps>(tx: &mut O, accounts: TArray<u64>, from: u32, to: u32) -> Result<(), Abort> {
    let a = tx.get(accounts.at(from))?;
    let b = tx.get(accounts.at(to))?;
    tx.set(accounts.at(from), a.wrapping_sub(1))?;
    tx.set(accounts.at(to), b.wrapping_add(1))?;
    Ok(())
}

/// Sums every account inside one (read-only) transaction.
fn audit<O: TxOps>(tx: &mut O, accounts: TArray<u64>) -> Result<u64, Abort> {
    let mut total = 0u64;
    for i in 0..accounts.len() {
        total += tx.get(accounts.at(i))?;
    }
    Ok(total)
}

fn main() {
    let kind = std::env::args()
        .nth(1)
        .map(|name| StmKind::parse(&name).unwrap_or_else(|| panic!("unknown STM kind {name:?}")))
        .unwrap_or(StmKind::TinyEtlWb);

    println!("bank example: {TASKLETS} tasklets x {TRANSFERS_PER_TASKLET} transfers using {kind}");

    let config = StmConfig::new(kind, MetadataPlacement::Wram).with_lock_table_entries(512);
    let mut dpu = ThreadedDpu::new(config).expect("STM metadata fits in WRAM");
    let accounts: TArray<u64> =
        dpu.alloc_array(Tier::Mram, ACCOUNTS).expect("accounts fit in MRAM");
    for i in 0..ACCOUNTS {
        dpu.poke_var(accounts.at(i), INITIAL_BALANCE);
    }

    let report = dpu
        .run(TASKLETS, |mut tasklet| {
            let id = tasklet.tasklet_id() as u32;
            for step in 0..TRANSFERS_PER_TASKLET {
                // The last tasklet acts as an auditor and asserts conservation.
                if id as usize == TASKLETS - 1 {
                    let total = tasklet.transaction(|tx| audit(tx, accounts));
                    assert_eq!(
                        total,
                        u64::from(ACCOUNTS) * INITIAL_BALANCE,
                        "audit observed a torn total — opacity violated"
                    );
                    continue;
                }
                // Everyone else moves one unit between two pseudo-random accounts.
                let from = (id * 31 + step * 17) % ACCOUNTS;
                let to = (id * 13 + step * 29 + 1) % ACCOUNTS;
                if from == to {
                    continue;
                }
                tasklet.transaction(|tx| transfer(tx, accounts, from, to));
            }
        })
        .expect("tasklet count is within the hardware limit");

    let total: u64 = (0..ACCOUNTS).map(|i| dpu.peek_var(accounts.at(i))).sum();
    println!("final total balance: {total} (expected {})", u64::from(ACCOUNTS) * INITIAL_BALANCE);
    println!("commits: {}, aborts: {}", report.commits, report.aborts);
    assert_eq!(total, u64::from(ACCOUNTS) * INITIAL_BALANCE);
    println!("balance conserved under every audit — the STM kept the bank consistent.");
}
