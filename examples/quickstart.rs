//! Quickstart: one typed transaction body, every STM design, both executors.
//!
//! The increment body below is written once against the executor-agnostic
//! [`TxOps`] facade and then run
//!
//! 1. on the deterministic, cycle-accounted simulator (via [`TxEngine`]), and
//! 2. on the threaded executor (real OS threads over atomic memory),
//!
//! for each of the paper's seven STM designs.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pim_stm_suite::sim::{Dpu, DpuConfig, TaskletCtx, TaskletStats, Tier};
use pim_stm_suite::stm::threaded::ThreadedDpu;
use pim_stm_suite::stm::var::{self, TVar};
use pim_stm_suite::stm::{
    Abort, MetadataPlacement, StmConfig, StmKind, StmShared, TxEngine, TxOps,
};

/// The transaction body: read-modify-write of one typed counter. Abort
/// propagates via `?`; the retry loop re-runs the body until it commits.
fn increment<O: TxOps>(tx: &mut O, counter: TVar<u64>) -> Result<(), Abort> {
    let value = tx.get(counter)?;
    tx.set(counter, value + 1)?;
    Ok(())
}

fn main() {
    println!("PIM-STM quickstart\n==================\n");

    // --- 1. The deterministic simulator: one tasklet, cycle-accounted. ----
    println!("simulated DPU (single tasklet, metadata in WRAM):");
    for kind in StmKind::ALL {
        let mut dpu = Dpu::new(DpuConfig::default());
        let config = StmConfig::new(kind, MetadataPlacement::Wram);
        let shared = StmShared::allocate(&mut dpu, config).expect("metadata fits in WRAM");
        let slot = shared.register_tasklet(&mut dpu, 0).expect("logs fit in WRAM");
        let counter: TVar<u64> =
            var::alloc_var(&mut dpu, Tier::Mram).expect("MRAM has room for one word");
        let mut engine = TxEngine::for_shared(shared, slot);
        let mut stats = TaskletStats::new();
        let mut cycles = 0;
        for _ in 0..100 {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, cycles);
            engine.transaction(&mut ctx, |tx| increment(tx, counter));
            cycles = ctx.now();
        }
        println!(
            "  {:<11} 100 increments -> counter = {:>3}, {:>7} cycles ({:.1} us simulated)",
            kind.name(),
            var::peek_var(&dpu, counter),
            cycles,
            cycles as f64 / dpu.latency().clock_hz as f64 * 1e6,
        );
    }

    // --- 2. The threaded executor: real threads over atomic memory. -------
    println!("\nthreaded executor (4 tasklets, real concurrency):");
    for kind in [StmKind::Norec, StmKind::TinyEtlWb, StmKind::VrEtlWt] {
        let config = StmConfig::new(kind, MetadataPlacement::Wram);
        let mut dpu = ThreadedDpu::new(config).expect("metadata fits");
        let counter: TVar<u64> = dpu.alloc_var(Tier::Mram).expect("data fits");
        let report = dpu
            .run(4, |mut tasklet| {
                for _ in 0..1_000 {
                    tasklet.transaction(|tx| increment(tx, counter));
                }
            })
            .expect("4 tasklets is within the hardware limit");
        println!(
            "  {:<11} 4 x 1000 increments -> counter = {}, commits = {}, aborts = {}",
            kind.name(),
            dpu.peek_var(counter),
            report.commits,
            report.aborts
        );
    }
}
