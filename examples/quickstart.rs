//! Quickstart: run a handful of transactions with every STM design of the
//! PIM-STM library, on both executors.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pim_stm_suite::sim::{Dpu, DpuConfig, TaskletCtx, TaskletStats, Tier};
use pim_stm_suite::stm::threaded::ThreadedDpu;
use pim_stm_suite::stm::{
    algorithm_for, run_transaction, MetadataPlacement, StmConfig, StmKind, StmShared,
};

fn main() {
    println!("PIM-STM quickstart\n==================\n");

    // --- 1. The deterministic simulator: one tasklet, cycle-accounted. ----
    println!("simulated DPU (single tasklet, metadata in WRAM):");
    for kind in StmKind::ALL {
        let mut dpu = Dpu::new(DpuConfig::default());
        let config = StmConfig::new(kind, MetadataPlacement::Wram);
        let shared = StmShared::allocate(&mut dpu, config).expect("metadata fits in WRAM");
        let mut slot = shared.register_tasklet(&mut dpu, 0).expect("logs fit in WRAM");
        let counter = dpu.alloc(Tier::Mram, 1).expect("MRAM has room for one word");
        let alg = algorithm_for(kind);
        let mut stats = TaskletStats::new();
        let mut cycles = 0;
        for _ in 0..100 {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, cycles);
            run_transaction(alg, &shared, &mut slot, &mut ctx, |tx| {
                let value = tx.read(counter)?;
                tx.write(counter, value + 1)?;
                Ok(())
            });
            cycles = ctx_cycles(&ctx);
        }
        println!(
            "  {:<11} 100 increments -> counter = {:>3}, {:>7} cycles ({:.1} us simulated)",
            kind.name(),
            dpu.peek(counter),
            cycles,
            cycles as f64 / dpu.latency().clock_hz as f64 * 1e6,
        );
    }

    // --- 2. The threaded executor: real threads over atomic memory. -------
    println!("\nthreaded executor (4 tasklets, real concurrency):");
    for kind in [StmKind::Norec, StmKind::TinyEtlWb, StmKind::VrEtlWt] {
        let config = StmConfig::new(kind, MetadataPlacement::Wram);
        let mut dpu = ThreadedDpu::new(config).expect("metadata fits");
        let counter = dpu.alloc(Tier::Mram, 1).expect("data fits");
        let report = dpu.run(4, |mut tasklet| {
            for _ in 0..1_000 {
                tasklet.transaction(|tx| {
                    let value = tx.read(counter)?;
                    tx.write(counter, value + 1)?;
                    Ok(())
                });
            }
        });
        println!(
            "  {:<11} 4 x 1000 increments -> counter = {}, commits = {}, aborts = {}",
            kind.name(),
            dpu.peek(counter),
            report.commits,
            report.aborts
        );
    }
}

fn ctx_cycles(ctx: &TaskletCtx<'_>) -> u64 {
    ctx.now()
}
