//! Commit-time write-back coalescing: correctness and cost.
//!
//! The redo-log publication shared by Tiny-WB, VR-WB and NOrec
//! (`pim_stm::writeback`) can merge contiguous write-set runs into single
//! `store_block` DMA bursts. These tests pin down the two properties the
//! optimisation must have:
//!
//! * **byte-identical memory** — for arbitrary write sets, the coalesced
//!   publish leaves exactly the contents the word-wise baseline leaves, on
//!   every write-back design;
//! * **strictly fewer DMA setups** — on ArrayBench-B (the paper's tiny
//!   highly-contended read-modify-write workload) the simulator's MRAM DMA
//!   setup count drops, with the final committed state unchanged.

use proptest::prelude::*;

use pim_stm_suite::sim::{Dpu, DpuConfig, TaskletCtx, TaskletStats, Tier};
use pim_stm_suite::stm::{
    MetadataPlacement, StmConfig, StmKind, StmShared, TxEngine, TxOps, WriteBackStrategy,
};
use pim_stm_suite::workloads::spec::Executor;
use pim_stm_suite::workloads::{RunSpec, Workload};

/// The write-back designs (write-through publishes at encounter time and
/// has no redo log to coalesce).
const WRITE_BACK_KINDS: [StmKind; 5] =
    [StmKind::Norec, StmKind::TinyCtlWb, StmKind::TinyEtlWb, StmKind::VrCtlWb, StmKind::VrEtlWb];

/// Runs one transaction writing `writes` (offset, value) pairs into a
/// 64-word MRAM region under `strategy`, returning the full region contents
/// and the run's total MRAM DMA setup count.
fn run_once(kind: StmKind, strategy: WriteBackStrategy, writes: &[(u32, u64)]) -> (Vec<u64>, u64) {
    let mut dpu = Dpu::new(DpuConfig::small());
    let config = StmConfig::new(kind, MetadataPlacement::Wram)
        .with_lock_table_entries(128)
        .with_write_set_capacity(64)
        .with_read_set_capacity(64)
        .with_write_back(strategy);
    let shared = StmShared::allocate(&mut dpu, config).expect("metadata fits");
    let slot = shared.register_tasklet(&mut dpu, 0).expect("logs fit");
    let region = dpu.alloc(Tier::Mram, 64).expect("data fits");
    let mut engine = TxEngine::for_shared(shared, slot);
    let mut stats = TaskletStats::new();
    {
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
        engine.transaction(&mut ctx, |tx| {
            for &(offset, value) in writes {
                tx.write_word(region.offset(offset), value)?;
            }
            Ok(())
        });
    }
    (dpu.peek_block(region, 64), stats.mram_dma_setups)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary write sets — duplicates, contiguous runs, scattered
    /// singletons — the coalesced publish produces byte-identical memory to
    /// the word-wise baseline, on every write-back design, and never costs
    /// more DMA setups.
    #[test]
    fn coalesced_commit_is_byte_identical_to_word_wise(
        writes in prop::collection::vec((0u32..64, any::<u64>()), 1..24),
        kind_index in 0usize..WRITE_BACK_KINDS.len(),
    ) {
        let kind = WRITE_BACK_KINDS[kind_index];
        let (word_mem, word_setups) = run_once(kind, WriteBackStrategy::WordWise, &writes);
        let (burst_mem, burst_setups) = run_once(kind, WriteBackStrategy::Coalesced, &writes);
        prop_assert_eq!(word_mem, burst_mem, "{} memory contents diverged", kind);
        prop_assert!(
            burst_setups <= word_setups,
            "{} coalescing increased DMA setups ({} > {})",
            kind,
            burst_setups,
            word_setups
        );
    }
}

#[test]
fn a_contiguous_write_set_saves_dma_setups_on_every_write_back_design() {
    let writes: Vec<(u32, u64)> = (8..16).map(|i| (i, u64::from(i) * 3)).collect();
    for kind in WRITE_BACK_KINDS {
        let (word_mem, word_setups) = run_once(kind, WriteBackStrategy::WordWise, &writes);
        let (burst_mem, burst_setups) = run_once(kind, WriteBackStrategy::Coalesced, &writes);
        assert_eq!(word_mem, burst_mem, "{kind}");
        assert!(
            burst_setups < word_setups,
            "{kind}: an 8-word contiguous run must save setups ({burst_setups} vs {word_setups})"
        );
    }
}

fn arraybench_b_setups(
    kind: StmKind,
    tasklets: usize,
    strategy: WriteBackStrategy,
) -> (u64, u64, u64) {
    let report = RunSpec::new(Workload::ArrayB, kind, MetadataPlacement::Mram, tasklets)
        .with_scale(0.2)
        .with_seed(42)
        .with_write_back(strategy)
        .run_on(Executor::Simulator);
    report.assert_invariants();
    (report.sim.as_ref().unwrap().total_mram_dma_setups(), report.fingerprint, report.aborts)
}

/// The acceptance regression, contention-free half: a single-tasklet
/// ArrayBench-B run is deterministic and abort-free, so the DMA setup
/// difference isolates the commit path — coalescing must be strictly
/// cheaper for **every** write-back design, with identical final memory.
#[test]
fn arraybench_b_commits_fewer_dma_setups_with_coalescing() {
    for kind in WRITE_BACK_KINDS {
        let (word_setups, word_state, word_aborts) =
            arraybench_b_setups(kind, 1, WriteBackStrategy::WordWise);
        let (burst_setups, burst_state, _) =
            arraybench_b_setups(kind, 1, WriteBackStrategy::Coalesced);
        assert_eq!(word_aborts, 0, "{kind}: a single tasklet never conflicts");
        assert_eq!(word_state, burst_state, "{kind}: final array state diverged");
        assert!(
            burst_setups < word_setups,
            "{kind}: coalesced write-back must issue fewer MRAM DMA setups \
             ({burst_setups} vs {word_setups})"
        );
    }
}

/// The acceptance regression, contended half: with 4 tasklets the commit
/// timing shift also perturbs the interleaving (and so the per-design abort
/// counts), but across the write-back family the coalesced runs still issue
/// fewer MRAM DMA setups in aggregate — and every design's committed array
/// state is unchanged (increments commute).
#[test]
fn arraybench_b_under_contention_saves_setups_in_aggregate() {
    let mut word_total = 0;
    let mut burst_total = 0;
    for kind in WRITE_BACK_KINDS {
        let (word_setups, word_state, _) =
            arraybench_b_setups(kind, 4, WriteBackStrategy::WordWise);
        let (burst_setups, burst_state, _) =
            arraybench_b_setups(kind, 4, WriteBackStrategy::Coalesced);
        assert_eq!(word_state, burst_state, "{kind}: final array state diverged");
        word_total += word_setups;
        burst_total += burst_setups;
    }
    assert!(
        burst_total < word_total,
        "coalescing must save MRAM DMA setups across the write-back family \
         ({burst_total} vs {word_total})"
    );
}

/// Coalescing must not disturb the threaded executor (where `store_block`
/// degenerates to per-word atomic stores): same conserved state either way.
#[test]
fn coalescing_is_inert_on_the_threaded_executor() {
    let base = RunSpec::new(Workload::ArrayB, StmKind::TinyEtlWb, MetadataPlacement::Wram, 4)
        .with_scale(0.2);
    let word = base.with_write_back(WriteBackStrategy::WordWise).run_on(Executor::Threaded);
    let burst = base.with_write_back(WriteBackStrategy::Coalesced).run_on(Executor::Threaded);
    word.assert_invariants();
    burst.assert_invariants();
    assert_eq!(word.fingerprint, burst.fingerprint);
}
