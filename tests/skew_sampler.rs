//! Property tests over `pim_sim::skew::KeySampler`, the skewed key-stream
//! source behind every sharded fleet workload: its precomputed CDF must be
//! a valid distribution function, every draw must land in the keyspace at
//! both ends of the skew range, and each draw must consume exactly one
//! uniform variate regardless of the keyspace size — the property that
//! keeps fleet streams reproducible across shard counts.

use proptest::prelude::*;

use pim_stm_suite::sim::{KeyDist, KeySampler, SimRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The Zipf CDF is strictly positive, non-decreasing and normalised.
    #[test]
    fn zipf_cdf_is_monotone_and_normalised(
        keys in 1u64..512,
        theta in prop::sample::select(vec![0.01, 0.3, 0.6, 0.99, 1.2, 2.0]),
    ) {
        let sampler = KeySampler::new(KeyDist::Zipf { theta }, keys);
        let cdf = sampler.cdf();
        prop_assert_eq!(cdf.len() as u64, keys);
        prop_assert!(cdf[0] > 0.0);
        for pair in cdf.windows(2) {
            prop_assert!(pair[1] >= pair[0], "CDF must be non-decreasing");
        }
        prop_assert!((cdf[cdf.len() - 1] - 1.0).abs() < 1e-12, "CDF must end at 1");
    }

    /// Draws stay inside `0..keys` at both extremes of the supported skew
    /// range (θ=0 hits the uniform fast path, θ=2 the heaviest head).
    #[test]
    fn samples_stay_in_range_at_both_skew_extremes(
        keys in 1u64..512,
        seed in any::<u64>(),
        draws in 1usize..64,
    ) {
        for theta in [0.0, 2.0] {
            let sampler = KeySampler::new(KeyDist::Zipf { theta }, keys);
            let mut rng = SimRng::new(seed);
            for _ in 0..draws {
                let key = sampler.sample(&mut rng);
                prop_assert!(key < keys, "theta {theta}: key {key} out of 0..{keys}");
                let shifted = sampler.sample_shifted(&mut rng, keys / 2);
                prop_assert!(shifted < keys, "theta {theta}: shifted {shifted} out of range");
            }
        }
    }

    /// Every draw consumes exactly one variate, independent of the
    /// keyspace size or skew: after `draws` samples, the RNG sits exactly
    /// `draws` `next_f64` calls ahead of a fresh twin.
    #[test]
    fn each_draw_consumes_exactly_one_variate(
        keys in 1u64..512,
        theta in prop::sample::select(vec![0.0, 0.6, 0.99, 2.0]),
        seed in any::<u64>(),
        draws in 0usize..64,
    ) {
        let sampler = KeySampler::new(KeyDist::Zipf { theta }, keys);
        let mut sampled = SimRng::new(seed);
        for _ in 0..draws {
            sampler.sample(&mut sampled);
        }
        let mut advanced = SimRng::new(seed);
        for _ in 0..draws {
            advanced.next_f64();
        }
        prop_assert_eq!(
            &sampled, &advanced,
            "sampling must advance the RNG by exactly one variate per draw"
        );
        // The streams stay in lockstep afterwards too.
        prop_assert_eq!(sampled.next_u64(), advanced.next_u64());
    }
}
