//! Cross-executor equivalence of the migrated workloads.
//!
//! Every paper workload is now a single `TxOps`-generic transaction body
//! (see `pim_workloads::driver`), so one seeded `RunSpec` can run on the
//! cycle-accounted simulator *and* on real threads. These tests pin down
//! what that buys, for **all seven STM designs**:
//!
//! * the simulator is deterministic: re-running a seeded spec reproduces
//!   the exact final committed state (fingerprint equality);
//! * both executors conserve the workload's invariants (no lost updates,
//!   sorted/unique list, exactly-once job claims, clean grid);
//! * for commutative workloads (ArrayBench, KMeans) the final committed
//!   state is *identical across executors*, because every transaction
//!   commits exactly once and the folds commute — the interleaving cannot
//!   show through.

use pim_stm_suite::stm::MetadataPlacement;
use pim_stm_suite::stm::{AbortReason, StmKind, TimeDomain};
use pim_stm_suite::workloads::spec::Executor;
use pim_stm_suite::workloads::{RunSpec, Workload};

/// The migrated workloads, at scales that keep 7 kinds × 3 runs fast.
const CASES: [(Workload, f64); 5] = [
    (Workload::ArrayA, 0.05),
    (Workload::ArrayB, 0.1),
    (Workload::ListHc, 0.1),
    (Workload::KmeansHc, 0.1),
    (Workload::LabyrinthS, 0.1),
];

fn spec(workload: Workload, scale: f64, kind: StmKind) -> RunSpec {
    RunSpec::new(workload, kind, MetadataPlacement::Mram, 3).with_scale(scale).with_seed(1234)
}

#[test]
fn seeded_simulator_runs_reproduce_identical_committed_state() {
    for (workload, scale) in CASES {
        for kind in StmKind::ALL {
            let first = spec(workload, scale, kind).run_on(Executor::Simulator);
            let second = spec(workload, scale, kind).run_on(Executor::Simulator);
            first.assert_invariants();
            assert_eq!(
                first.fingerprint, second.fingerprint,
                "{workload}/{kind}: simulator must be deterministic"
            );
            assert_eq!(first.commits, second.commits, "{workload}/{kind}");
            assert_eq!(first.aborts, second.aborts, "{workload}/{kind}");
        }
    }
}

#[test]
fn threaded_runs_conserve_every_workload_invariant() {
    for (workload, scale) in CASES {
        for kind in StmKind::ALL {
            let report = spec(workload, scale, kind).run_on(Executor::Threaded);
            report.assert_invariants();
            assert!(report.commits > 0, "{workload}/{kind}: nothing committed");
        }
    }
}

#[test]
fn commutative_workloads_produce_identical_state_on_both_executors() {
    for (workload, scale) in CASES {
        if !workload.commutative() {
            continue;
        }
        for kind in StmKind::ALL {
            let sim = spec(workload, scale, kind).run_on(Executor::Simulator);
            let threaded = spec(workload, scale, kind).run_on(Executor::Threaded);
            assert!(sim.deterministic_final_state);
            assert_eq!(
                sim.fingerprint, threaded.fingerprint,
                "{workload}/{kind}: executors disagree on the committed state"
            );
        }
    }
}

#[test]
fn deterministic_runs_agree_on_commits_and_abort_reason_totals() {
    // Single-tasklet runs are fully deterministic on *both* executors: no
    // concurrency means no conflicts and no application-level cancels, so
    // the unified profiles must agree exactly on commit counts and on every
    // abort-reason bucket — while carrying different time domains.
    for (workload, scale) in CASES {
        for kind in StmKind::ALL {
            let base = RunSpec::new(workload, kind, MetadataPlacement::Mram, 1)
                .with_scale(scale)
                .with_seed(1234);
            let sim = base.run_on(Executor::Simulator);
            let threaded = base.run_on(Executor::Threaded);
            let sim_profile = sim.merged_profile();
            let threaded_profile = threaded.merged_profile();
            assert_eq!(sim_profile.time_domain, TimeDomain::Cycles);
            assert_eq!(threaded_profile.time_domain, TimeDomain::WallNanos);
            assert_eq!(
                sim_profile.commits(),
                threaded_profile.commits(),
                "{workload}/{kind}: profiles disagree on commit counts"
            );
            for reason in AbortReason::ALL {
                assert_eq!(
                    sim_profile.aborts_for(reason),
                    threaded_profile.aborts_for(reason),
                    "{workload}/{kind}: profiles disagree on {} aborts",
                    reason.label()
                );
            }
        }
    }
}

#[test]
fn profiles_stay_internally_consistent_under_contention() {
    // Multi-tasklet abort counts legitimately differ across executors, but
    // each profile must stay internally consistent (histogram == aborts)
    // and both executors must commit the same fixed amount of work.
    for (workload, scale) in CASES {
        for kind in [StmKind::Norec, StmKind::TinyEtlWt, StmKind::VrCtlWb] {
            let sim = spec(workload, scale, kind).run_on(Executor::Simulator);
            let threaded = spec(workload, scale, kind).run_on(Executor::Threaded);
            for report in [&sim, &threaded] {
                let profile = report.merged_profile();
                assert_eq!(profile.commits(), report.commits, "{workload}/{kind}");
                assert_eq!(
                    profile.histogram_total(),
                    report.aborts,
                    "{workload}/{kind} on {}: unattributed aborts",
                    report.executor
                );
            }
            assert_eq!(sim.commits, threaded.commits, "{workload}/{kind}");
        }
    }
}

#[test]
fn order_sensitive_workloads_still_commit_every_operation_threaded() {
    // Linked list and Labyrinth interleavings differ across executors, so
    // their fingerprints may differ — but the committed *transaction counts*
    // are fixed by the spec and must match the simulator's.
    for (workload, scale) in CASES {
        if workload.commutative() {
            continue;
        }
        for kind in [StmKind::Norec, StmKind::TinyEtlWb, StmKind::VrCtlWb] {
            let sim = spec(workload, scale, kind).run_on(Executor::Simulator);
            let threaded = spec(workload, scale, kind).run_on(Executor::Threaded);
            assert_eq!(
                sim.commits, threaded.commits,
                "{workload}/{kind}: committed transaction counts must agree"
            );
        }
    }
}
