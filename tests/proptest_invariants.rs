//! Property-based tests (proptest) on the core data structures and on the
//! transactional invariants of the STM designs.

use proptest::prelude::*;

use pim_stm_suite::sim::{
    Addr, Dpu, DpuConfig, LatencyHistogram, Phase, PhaseBreakdown, SimRng, Tier,
};
use pim_stm_suite::stm::locktable::OrecWord;
use pim_stm_suite::stm::platform::{decode_addr, encode_addr};
use pim_stm_suite::stm::rwlock::{RwLockWord, MAX_TASKLETS};
use pim_stm_suite::stm::threaded::ThreadedDpu;
use pim_stm_suite::stm::{MetadataPlacement, StmConfig, StmKind, StmShared};

fn arb_addr() -> impl Strategy<Value = Addr> {
    (any::<bool>(), 0u32..0x00ff_ffff).prop_map(|(mram, word)| {
        if mram {
            Addr::mram(word)
        } else {
            Addr::wram(word)
        }
    })
}

fn arb_kind() -> impl Strategy<Value = StmKind> {
    prop::sample::select(StmKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encoded addresses decode to themselves regardless of tier and offset.
    #[test]
    fn addr_encoding_roundtrips(addr in arb_addr()) {
        prop_assert_eq!(decode_addr(encode_addr(addr)), addr);
    }

    /// ORec words always classify as either locked-with-owner or
    /// unlocked-with-version, and round-trip their payload.
    #[test]
    fn orec_words_roundtrip(version in 0u64..(1 << 40), owner in 0usize..24) {
        let unlocked = OrecWord::unlocked(version);
        prop_assert!(!unlocked.is_locked());
        prop_assert_eq!(unlocked.version(), version);
        let locked = OrecWord::locked_by(owner);
        prop_assert!(locked.is_locked());
        prop_assert_eq!(locked.owner(), Some(owner));
        prop_assert_ne!(locked.raw(), unlocked.raw());
    }

    /// Adding then removing an arbitrary set of readers leaves a VR rw-lock
    /// word free, and the reader count always matches the set size.
    #[test]
    fn rwlock_reader_sets_are_consistent(readers in prop::collection::btree_set(0usize..MAX_TASKLETS, 0..MAX_TASKLETS)) {
        let mut word = RwLockWord::free();
        for &r in &readers {
            word = word.with_reader(r);
        }
        prop_assert_eq!(word.reader_count() as usize, readers.len());
        for &r in &readers {
            prop_assert!(word.has_reader(r));
        }
        for &r in &readers {
            word = word.without_reader(r);
        }
        prop_assert!(word.is_free());
    }

    /// The deterministic PRNG respects bounds and is reproducible.
    #[test]
    fn sim_rng_is_bounded_and_reproducible(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..32 {
            let x = a.next_range(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.next_range(bound));
        }
    }

    /// Phase breakdowns behave like a vector of counters: totals add up and
    /// collapsing to wasted time preserves the total.
    #[test]
    fn phase_breakdowns_add_up(charges in prop::collection::vec((0usize..7, 0u64..10_000), 0..64)) {
        let mut breakdown = PhaseBreakdown::new();
        let mut expected_total = 0u64;
        for (phase_index, cycles) in charges {
            breakdown.charge(Phase::ALL[phase_index], cycles);
            expected_total += cycles;
        }
        prop_assert_eq!(breakdown.total(), expected_total);
        let mut collapsed = breakdown;
        collapsed.collapse_into_wasted();
        prop_assert_eq!(collapsed.total(), expected_total);
        prop_assert_eq!(collapsed.get(Phase::Wasted), expected_total);
    }

    /// Histogram merging is element-wise addition, so it is commutative,
    /// associative, and *exactly* equal to histogramming the concatenated
    /// sample stream — the property that makes fleet-merged percentiles
    /// independent of shard count and worker count.
    #[test]
    fn histogram_merge_is_exact_commutative_and_associative(
        a in prop::collection::vec(any::<u64>(), 0..48),
        b in prop::collection::vec(any::<u64>(), 0..48),
        c in prop::collection::vec(any::<u64>(), 0..48),
    ) {
        let hist = |samples: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &s in samples {
                h.record(s);
            }
            h
        };
        let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));

        // Commutativity: a ∪ b == b ∪ a.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // Associativity: (a ∪ b) ∪ c == a ∪ (b ∪ c).
        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Exactness: the merge equals one histogram over the whole stream,
        // bucket for bucket (LatencyHistogram derives Eq).
        let whole: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&ab_c, &hist(&whole));
        prop_assert_eq!(ab_c.count(), whole.len() as u64);
    }

    /// Every `u64` lands in a bucket that actually contains it, unit buckets
    /// below 16 are exact, and log-bucket widths respect the 12.5% relative
    /// error bound (width ≤ bucket_low / 8).
    #[test]
    fn histogram_buckets_contain_their_values_within_the_error_bound(value in any::<u64>()) {
        let index = LatencyHistogram::bucket_of(value);
        let low = LatencyHistogram::bucket_low(index);
        let high = LatencyHistogram::bucket_high(index);
        prop_assert!(low <= value && value <= high, "{low} <= {value} <= {high}");
        if value < 16 {
            prop_assert_eq!(low, value);
            prop_assert_eq!(high, value);
        } else {
            let width = high - low + 1;
            prop_assert!(width * 8 <= low, "width {width} must be at most low {low} / 8");
        }
        // A single-sample histogram reports the sample exactly at every
        // quantile: the bucket cap is clamped to the recorded max.
        let mut h = LatencyHistogram::new();
        h.record(value);
        prop_assert_eq!(h.quantile(0.5), value);
        prop_assert_eq!(h.quantile(1.0), value);
        prop_assert_eq!(h.max(), value);
    }

    /// The lock-table hash always lands inside the table, for every design
    /// that uses one.
    #[test]
    fn lock_index_is_always_in_range(addr in arb_addr(), entries in 1u32..8192) {
        let mut dpu = Dpu::new(DpuConfig::small());
        let config = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Mram)
            .with_lock_table_entries(entries);
        let shared = StmShared::allocate(&mut dpu, config).expect("metadata fits");
        prop_assert!(shared.lock_index(addr) < entries);
        prop_assert_eq!(shared.lock_index(addr), shared.lock_index(addr));
    }

    /// Under real concurrency, arbitrary batches of transactional increments
    /// over a small table are never lost, for any STM design.
    #[test]
    fn threaded_increments_are_linearizable(
        kind in arb_kind(),
        per_tasklet in 1u32..40,
        tasklets in 1usize..5,
        cells in 1u32..8,
    ) {
        let config = StmConfig::new(kind, MetadataPlacement::Wram).with_lock_table_entries(64);
        let mut dpu = ThreadedDpu::new(config).expect("metadata fits");
        let table = dpu.alloc(Tier::Mram, cells).expect("table fits");
        dpu.run(tasklets, |mut tasklet| {
            let id = tasklet.tasklet_id() as u32;
            for i in 0..per_tasklet {
                let cell = table.offset((id + i) % cells);
                tasklet.transaction(|tx| {
                    let value = tx.read(cell)?;
                    tx.write(cell, value + 1)?;
                    Ok(())
                });
            }
        })
        .expect("tasklet count is within the hardware limit");
        let total: u64 = (0..cells).map(|i| dpu.peek(table.offset(i))).sum();
        prop_assert_eq!(total, u64::from(per_tasklet) * tasklets as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random read/write transactions on the simulator commit exactly the
    /// values a sequential reference execution would produce when there is a
    /// single tasklet (single-tasklet transactions are trivially serialisable,
    /// so any divergence indicates a redo/undo-log bug).
    #[test]
    fn single_tasklet_matches_sequential_reference(
        kind in arb_kind(),
        ops in prop::collection::vec((0u32..16, 0u64..1000), 1..60),
    ) {
        let mut dpu = Dpu::new(DpuConfig::small());
        let config = StmConfig::new(kind, MetadataPlacement::Wram).with_lock_table_entries(64);
        let shared = StmShared::allocate(&mut dpu, config).expect("metadata fits");
        let mut slot = shared.register_tasklet(&mut dpu, 0).expect("slot fits");
        let table = dpu.alloc(Tier::Mram, 16).expect("table fits");
        let alg = pim_stm_suite::stm::algorithm_for(kind);
        let mut stats = pim_stm_suite::sim::TaskletStats::new();
        let mut reference = [0u64; 16];

        // One transaction per (cell, delta) pair: read-modify-write.
        for (cell, delta) in &ops {
            let mut ctx = pim_stm_suite::sim::TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
            pim_stm_suite::stm::run_transaction(alg, &shared, &mut slot, &mut ctx, |tx| {
                let addr = table.offset(*cell);
                let value = tx.read(addr)?;
                tx.write(addr, value + delta)?;
                Ok(())
            });
            reference[*cell as usize] += delta;
        }
        for (i, &expected) in reference.iter().enumerate() {
            prop_assert_eq!(dpu.peek(table.offset(i as u32)), expected, "cell {} diverged", i);
        }
        prop_assert_eq!(stats.commits, ops.len() as u64);
        prop_assert_eq!(stats.aborts, 0);
    }
}
