//! Property tests over the unified execution profile (`pim_stm::profile`):
//! for every STM design, on **both** executors, the profile a run reports
//! must be internally consistent — attempts decompose into commits plus
//! aborts, the abort-reason histogram accounts for every abort (the shared
//! retry core tags each one), and doing more work never shrinks the phase
//! totals.

use proptest::prelude::*;

use pim_stm_suite::stm::{StmKind, TimeDomain};
use pim_stm_suite::workloads::spec::Executor;
use pim_stm_suite::workloads::{RunSpec, Workload};

fn arb_kind() -> impl Strategy<Value = StmKind> {
    prop::sample::select(StmKind::ALL.to_vec())
}

fn arb_executor() -> impl Strategy<Value = Executor> {
    prop::sample::select(Executor::ALL.to_vec())
}

/// A small, contended ArrayBench-B cell: every design commits and most
/// multi-tasklet runs also abort, so the histogram is exercised.
fn spec(kind: StmKind, tasklets: usize, seed: u64) -> RunSpec {
    RunSpec::new(kind_workload(), kind, pim_stm_suite::stm::MetadataPlacement::Mram, tasklets)
        .with_scale(0.04)
        .with_seed(seed)
}

fn kind_workload() -> Workload {
    Workload::ArrayB
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// attempts = commits + aborts and the abort-reason histogram sums to
    /// the abort count, per tasklet and in aggregate, on both executors.
    #[test]
    fn attempts_decompose_and_histograms_account_for_every_abort(
        kind in arb_kind(),
        executor in arb_executor(),
        tasklets in 1usize..4,
        seed in 0u64..1024,
    ) {
        let report = spec(kind, tasklets, seed).run_on(executor);
        report.assert_invariants();
        prop_assert_eq!(report.profiles.len(), tasklets);
        let expected_domain = executor.time_domain();
        for profile in &report.profiles {
            prop_assert_eq!(profile.time_domain, expected_domain);
            prop_assert_eq!(profile.attempts(), profile.commits() + profile.aborts());
            prop_assert_eq!(
                profile.histogram_total(),
                profile.aborts(),
                "{} on {}: every abort must carry its reason",
                kind,
                executor
            );
        }
        let merged = report.merged_profile();
        prop_assert_eq!(merged.commits(), report.commits);
        prop_assert_eq!(merged.aborts(), report.aborts);
        prop_assert_eq!(merged.histogram_total(), report.aborts);
    }

    /// On the deterministic executor, scaling the workload up can only grow
    /// the phase totals (monotone in work done) — and the committed work
    /// grows with it.
    #[test]
    fn phase_totals_are_monotone_in_work_done(
        kind in arb_kind(),
        tasklets in 1usize..4,
        seed in 0u64..1024,
    ) {
        let small = spec(kind, tasklets, seed).run_on(Executor::Simulator);
        let large = spec(kind, tasklets, seed)
            .with_scale(0.12)
            .run_on(Executor::Simulator);
        let small_profile = small.merged_profile();
        let large_profile = large.merged_profile();
        prop_assert!(large.commits > small.commits);
        prop_assert!(
            large_profile.total_time() >= small_profile.total_time(),
            "{}: tripling the work shrank the phase total ({} -> {})",
            kind,
            small_profile.total_time(),
            large_profile.total_time()
        );
        prop_assert!(large_profile.dma_words() >= small_profile.dma_words());
    }
}

/// The threaded executor's wall-clock domain actually accrues time: a run
/// that commits work must report non-zero phase time in nanoseconds.
#[test]
fn threaded_profiles_accrue_wall_clock_time() {
    let report = spec(StmKind::TinyEtlWb, 2, 7).run_on(Executor::Threaded);
    let profile = report.merged_profile();
    assert_eq!(profile.time_domain, TimeDomain::WallNanos);
    assert!(profile.commits() > 0);
    assert!(profile.total_time() > 0, "threads must charge wall-clock nanoseconds");
}
