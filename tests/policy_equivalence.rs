//! Policy-composition equivalence: the composed engine
//! (`pim_stm::policy::ComposedTm`, what `algorithm_for` now resolves every
//! `StmKind` to) against the frozen pre-redesign monoliths
//! (`pim_stm::legacy`), replaying identical seeded workloads through both.
//!
//! On the deterministic simulator the claim is *bit-for-bit*: each
//! composition issues the same platform-operation sequence as the monolith
//! it replaces, so commits, per-reason abort histograms, final memory and
//! even the makespan cycle count must agree exactly — for every design,
//! both metadata placements, contended and uncontended cells, word and
//! record operations. On the threaded executor, single-tasklet runs are
//! outcome-deterministic (same checks), and contended commutative runs must
//! land both engines on the same conserved final state.
//!
//! The one deliberate divergence is the sorted multi-ORec acquisition of
//! `write_record` under encounter-time locking (`LockOrder::AddressSorted`,
//! the default): configuring `LockOrder::RecordOrder` restores the legacy
//! per-word path, which these tests pin down too.

use proptest::prelude::*;

use pim_stm_suite::sim::{Dpu, DpuConfig, Scheduler};
use pim_stm_suite::stm::legacy::legacy_algorithm_for;
use pim_stm_suite::stm::threaded::ThreadedDpu;
use pim_stm_suite::stm::var::peek_var;
use pim_stm_suite::stm::{
    algorithm_for, AbortReason, ExecProfile, LockOrder, MetadataPlacement, StmConfig, StmKind,
    StmShared, TmAlgorithm,
};
use pim_stm_suite::workloads::array_bench::{
    run_threaded, ArrayBenchConfig, ArrayBenchData, ArrayBenchProgram,
};
use pim_stm_suite::workloads::driver::{tasklet_rng, TxMachine};

/// Everything a deterministic simulator run exposes, for exact comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SimOutcome {
    commits: u64,
    aborts: u64,
    /// Per-tasklet abort histograms keyed by [`AbortReason`] order.
    histograms: Vec<Vec<u64>>,
    /// The whole shared array, word for word.
    memory: Vec<u64>,
    makespan_cycles: u64,
}

/// The STM configuration a differential cell runs under (both engines get
/// the identical one).
fn stm_config(kind: StmKind, placement: MetadataPlacement, cfg: &ArrayBenchConfig) -> StmConfig {
    StmConfig::new(kind, placement)
        .with_read_set_capacity(cfg.read_set_capacity())
        .with_write_set_capacity(cfg.write_set_capacity())
        .with_lock_table_entries(1024)
}

/// Runs one ArrayBench cell on the simulator under an explicit algorithm
/// (the construction mirror of `pim_workloads::array_bench::build`, which
/// hard-wires `algorithm_for`).
fn run_sim(
    alg: &'static dyn TmAlgorithm,
    stm: StmConfig,
    cfg: ArrayBenchConfig,
    tasklets: usize,
    seed: u64,
) -> SimOutcome {
    let mut dpu = Dpu::new(DpuConfig::default());
    let shared = StmShared::allocate(&mut dpu, stm).expect("metadata fits");
    let data = ArrayBenchData::allocate(&mut dpu, cfg);
    let programs = (0..tasklets)
        .map(|t| {
            let slot = shared.register_tasklet(&mut dpu, t).expect("logs fit");
            let tm = TxMachine::new(shared.clone(), slot, alg);
            Box::new(ArrayBenchProgram::new(tm, data, tasklet_rng(seed, t)))
                as Box<dyn pim_stm_suite::sim::TaskletProgram>
        })
        .collect();
    let report = Scheduler::new().run(&mut dpu, programs);
    let histograms = report
        .tasklet_stats
        .iter()
        .map(|stats| {
            let profile = ExecProfile::from_sim(stats);
            AbortReason::ALL.iter().map(|&r| profile.aborts_for(r)).collect()
        })
        .collect();
    let memory = (0..data.array.len()).map(|i| peek_var(&dpu, data.array.at(i))).collect();
    SimOutcome {
        commits: report.total_commits(),
        aborts: report.total_aborts(),
        histograms,
        memory,
        makespan_cycles: report.makespan_cycles,
    }
}

/// Runs the cell under the legacy oracle and the composed engine and
/// asserts exact agreement.
fn assert_sim_equivalent(
    kind: StmKind,
    placement: MetadataPlacement,
    cfg: ArrayBenchConfig,
    stm: StmConfig,
    tasklets: usize,
    seed: u64,
) {
    let legacy = run_sim(legacy_algorithm_for(kind), stm, cfg, tasklets, seed);
    let composed = run_sim(algorithm_for(kind), stm, cfg, tasklets, seed);
    assert_eq!(
        legacy.commits, composed.commits,
        "{kind} ({placement}, {tasklets} tasklets, seed {seed}): commits diverged"
    );
    assert_eq!(legacy.aborts, composed.aborts, "{kind} ({placement}): aborts diverged");
    assert_eq!(
        legacy.histograms, composed.histograms,
        "{kind} ({placement}): per-reason abort histograms diverged"
    );
    assert_eq!(legacy.memory, composed.memory, "{kind} ({placement}): final memory diverged");
    assert_eq!(
        legacy.makespan_cycles, composed.makespan_cycles,
        "{kind} ({placement}): even the cycle count must agree — the composition must issue \
         the same platform-operation sequence as the monolith"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The contended cell: arbitrary seeds and tasklet counts on the tiny,
    /// high-conflict ArrayBench-B — aborts of every reason occur and the
    /// back-off schedule matters, so divergence anywhere in the
    /// begin/read/write/commit/rollback protocol shows up.
    #[test]
    fn composed_engine_is_bit_identical_to_the_legacy_monoliths(
        kind_index in 0usize..StmKind::ALL.len(),
        mram_metadata in any::<bool>(),
        tasklets in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let kind = StmKind::ALL[kind_index];
        let placement =
            if mram_metadata { MetadataPlacement::Mram } else { MetadataPlacement::Wram };
        let cfg = ArrayBenchConfig::workload_b().scaled(0.1);
        let stm = stm_config(kind, placement, &cfg);
        assert_sim_equivalent(kind, placement, cfg, stm, tasklets, seed);
    }
}

/// The exhaustive record-path cell: ArrayBench-A's batched record reads run
/// the access-layer hooks (plan/accept/burst brackets), covering the
/// RecordReader half of every policy for all designs × both placements.
#[test]
fn record_reads_agree_for_every_kind_and_placement() {
    let cfg = ArrayBenchConfig { transactions_per_tasklet: 6, ..ArrayBenchConfig::workload_a() };
    for kind in StmKind::ALL {
        for placement in MetadataPlacement::ALL {
            let stm = stm_config(kind, placement, &cfg);
            assert_sim_equivalent(kind, placement, cfg, stm, 3, 42);
        }
    }
}

/// Grouped update records under `LockOrder::RecordOrder` take the per-word
/// path, which must be bit-identical to the legacy default `write_record`
/// loop; under the sorted default the *outcome* (memory, commits) must
/// still match on uncontended cells even though the acquisition order — and
/// therefore the cycle count — legitimately differs.
#[test]
fn write_record_paths_agree_with_the_oracle() {
    let cfg = ArrayBenchConfig::workload_b().with_update_record_words(4).scaled(0.1);
    for kind in StmKind::ALL {
        let stm =
            stm_config(kind, MetadataPlacement::Mram, &cfg).with_lock_order(LockOrder::RecordOrder);
        assert_sim_equivalent(kind, MetadataPlacement::Mram, cfg, stm, 4, 7);

        // Sorted acquisition, single tasklet: no conflicts, so the only
        // permitted difference is the operation order — final memory and
        // commit counts are pinned.
        let sorted = stm_config(kind, MetadataPlacement::Mram, &cfg)
            .with_lock_order(LockOrder::AddressSorted);
        let legacy = run_sim(legacy_algorithm_for(kind), stm, cfg, 1, 9);
        let composed = run_sim(algorithm_for(kind), sorted, cfg, 1, 9);
        assert_eq!(legacy.memory, composed.memory, "{kind}: sorted acquisition changed memory");
        assert_eq!(legacy.commits, composed.commits, "{kind}: sorted acquisition lost commits");
        assert_eq!(legacy.aborts, 0, "{kind}: single tasklet never conflicts");
        assert_eq!(composed.aborts, 0, "{kind}: single tasklet never conflicts");
    }
}

/// Threaded outcome of one cell: commits, aborts and the conserved
/// update-region sum.
fn run_threaded_cell(
    oracle: bool,
    kind: StmKind,
    cfg: ArrayBenchConfig,
    tasklets: usize,
    seed: u64,
) -> (u64, u64, u64) {
    let stm = stm_config(kind, MetadataPlacement::Mram, &cfg);
    let mut dpu = ThreadedDpu::new(stm).expect("metadata fits");
    if oracle {
        dpu.set_algorithm_override(legacy_algorithm_for(kind));
    }
    let (data, report) = run_threaded(&mut dpu, cfg, tasklets, seed).expect("run schedulable");
    (report.commits, report.aborts, data.update_region_sum(&dpu))
}

/// Single-tasklet threaded runs are outcome-deterministic: both engines
/// must commit every transaction, abort never, and leave the same sums —
/// the threaded half of the equivalence claim, exact where exactness is
/// well-defined.
#[test]
fn threaded_single_tasklet_outcomes_agree_for_every_kind() {
    let cfg = ArrayBenchConfig::workload_b().scaled(0.2);
    for kind in StmKind::ALL {
        let (legacy_commits, legacy_aborts, legacy_sum) = run_threaded_cell(true, kind, cfg, 1, 42);
        let (composed_commits, composed_aborts, composed_sum) =
            run_threaded_cell(false, kind, cfg, 1, 42);
        assert_eq!(legacy_commits, composed_commits, "{kind}: threaded commits diverged");
        assert_eq!(legacy_aborts, 0, "{kind}: single-tasklet runs never abort");
        assert_eq!(composed_aborts, 0, "{kind}: single-tasklet runs never abort");
        assert_eq!(legacy_sum, composed_sum, "{kind}: threaded final state diverged");
    }
}

/// Contended threaded runs are nondeterministic in interleaving but not in
/// outcome (ArrayBench increments commute): both engines must conserve the
/// same committed total under genuine concurrency.
#[test]
fn threaded_contended_runs_conserve_the_same_state_for_every_kind() {
    let cfg = ArrayBenchConfig::workload_b().scaled(0.25);
    let tasklets = 4;
    let expected_commits = u64::from(cfg.transactions_per_tasklet) * tasklets as u64;
    let expected_sum = expected_commits * u64::from(cfg.updates_applied_per_tx());
    for kind in StmKind::ALL {
        for oracle in [true, false] {
            let (commits, _, sum) = run_threaded_cell(oracle, kind, cfg, tasklets, 7);
            let engine = if oracle { "legacy" } else { "composed" };
            assert_eq!(commits, expected_commits, "{kind} ({engine}): lost transactions");
            assert_eq!(sum, expected_sum, "{kind} ({engine}): lost updates");
        }
    }
}
