//! Policy-composition regression anchor: the composed engine
//! (`pim_stm::policy::ComposedTm`, what `algorithm_for` resolves every
//! `StmKind` to) against *pinned golden outcomes* captured from the frozen
//! pre-redesign monoliths at the revision where the two were proven
//! bit-for-bit identical (the `pim_stm::legacy` differential, PR 5–7).
//!
//! The goldens replace the live legacy oracle: each pinned cell records the
//! exact commits, aborts, per-run abort total, makespan cycle count and an
//! FNV-1a fingerprint of the final shared array that the monoliths (and the
//! composed engine) produced on the deterministic simulator. Any change to
//! the composed engine's platform-operation sequence — an extra read, a
//! reordered lock acquisition, a different back-off — moves the cycle count
//! or the memory fingerprint and trips the anchor. This is what lets the
//! `legacy` module itself be deleted without losing the equivalence claim.
//!
//! Alongside the goldens, the file keeps the properties that need no
//! oracle: simulator determinism (same seed → same everything), the
//! `LockOrder` outcome contract for grouped record writes, and the threaded
//! executor's conservation invariants.

use proptest::prelude::*;

use pim_stm_suite::sim::{Dpu, DpuConfig, Scheduler};
use pim_stm_suite::stm::threaded::ThreadedDpu;
use pim_stm_suite::stm::var::peek_var;
use pim_stm_suite::stm::{
    algorithm_for, AbortReason, ExecProfile, LockOrder, MetadataPlacement, StmConfig, StmKind,
    StmShared, TmAlgorithm,
};
use pim_stm_suite::workloads::array_bench::{
    run_threaded, ArrayBenchConfig, ArrayBenchData, ArrayBenchProgram,
};
use pim_stm_suite::workloads::driver::{tasklet_rng, TxMachine};

/// Everything a deterministic simulator run exposes, for exact comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SimOutcome {
    commits: u64,
    aborts: u64,
    /// Per-tasklet abort histograms keyed by [`AbortReason`] order.
    histograms: Vec<Vec<u64>>,
    /// The whole shared array, word for word.
    memory: Vec<u64>,
    makespan_cycles: u64,
}

impl SimOutcome {
    /// FNV-1a over the final array — one word of drift anywhere flips it.
    fn memory_fingerprint(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &word in &self.memory {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        hash
    }
}

/// The STM configuration a pinned cell runs under.
fn stm_config(kind: StmKind, placement: MetadataPlacement, cfg: &ArrayBenchConfig) -> StmConfig {
    StmConfig::new(kind, placement)
        .with_read_set_capacity(cfg.read_set_capacity())
        .with_write_set_capacity(cfg.write_set_capacity())
        .with_lock_table_entries(1024)
}

/// Runs one ArrayBench cell on the simulator under an explicit algorithm
/// (the construction mirror of `pim_workloads::array_bench::build`, which
/// hard-wires `algorithm_for`).
fn run_sim(
    alg: &'static dyn TmAlgorithm,
    stm: StmConfig,
    cfg: ArrayBenchConfig,
    tasklets: usize,
    seed: u64,
) -> SimOutcome {
    let mut dpu = Dpu::new(DpuConfig::default());
    let shared = StmShared::allocate(&mut dpu, stm).expect("metadata fits");
    let data = ArrayBenchData::allocate(&mut dpu, cfg);
    let programs = (0..tasklets)
        .map(|t| {
            let slot = shared.register_tasklet(&mut dpu, t).expect("logs fit");
            let tm = TxMachine::new(shared.clone(), slot, alg);
            Box::new(ArrayBenchProgram::new(tm, data, tasklet_rng(seed, t)))
                as Box<dyn pim_stm_suite::sim::TaskletProgram>
        })
        .collect();
    let report = Scheduler::new().run(&mut dpu, programs);
    let histograms = report
        .tasklet_stats
        .iter()
        .map(|stats| {
            let profile = ExecProfile::from_sim(stats);
            AbortReason::ALL.iter().map(|&r| profile.aborts_for(r)).collect()
        })
        .collect();
    let memory = (0..data.array.len()).map(|i| peek_var(&dpu, data.array.at(i))).collect();
    SimOutcome {
        commits: report.total_commits(),
        aborts: report.total_aborts(),
        histograms,
        memory,
        makespan_cycles: report.makespan_cycles,
    }
}

/// One pinned golden: the contended ArrayBench-B cell (scaled 0.1,
/// 4 tasklets, seed 42) for one design × placement, as the legacy
/// monoliths — and, bit-for-bit, the composed engine — produced it.
struct Golden {
    kind: StmKind,
    placement: MetadataPlacement,
    commits: u64,
    aborts: u64,
    makespan_cycles: u64,
    memory_fingerprint: u64,
}

/// Runs the canonical golden cell for one design × placement.
fn run_golden_cell(kind: StmKind, placement: MetadataPlacement) -> SimOutcome {
    let cfg = ArrayBenchConfig::workload_b().scaled(0.1);
    let stm = stm_config(kind, placement, &cfg);
    run_sim(algorithm_for(kind), stm, cfg, 4, 42)
}

/// Runs the record-path golden cell (ArrayBench-A's batched record reads,
/// which exercise the RecordReader plan/accept/burst hooks) for one design.
fn run_record_golden_cell(kind: StmKind) -> SimOutcome {
    let cfg = ArrayBenchConfig { transactions_per_tasklet: 6, ..ArrayBenchConfig::workload_a() };
    let stm = stm_config(kind, MetadataPlacement::Mram, &cfg);
    run_sim(algorithm_for(kind), stm, cfg, 3, 42)
}

/// The contended-cell goldens (ArrayBench-B scaled 0.1, 4 tasklets,
/// seed 42): captured from the composed engine at the revision where the
/// live `pim_stm::legacy` differential still proved it bit-identical to the
/// monoliths. Aborts of every reason occur here and the back-off schedule
/// matters, so any drift in the begin/read/write/commit/rollback protocol
/// moves the cycle count.
const CONTENDED_GOLDENS: [Golden; 14] = [
    Golden {
        kind: StmKind::TinyCtlWb,
        placement: MetadataPlacement::Wram,
        commits: 160,
        aborts: 198,
        makespan_cycles: 251290,
        memory_fingerprint: 0x1624fa6d90b29e7b,
    },
    Golden {
        kind: StmKind::TinyCtlWb,
        placement: MetadataPlacement::Mram,
        commits: 160,
        aborts: 185,
        makespan_cycles: 2723765,
        memory_fingerprint: 0x1624fa6d90b29e7b,
    },
    Golden {
        kind: StmKind::TinyEtlWb,
        placement: MetadataPlacement::Wram,
        commits: 160,
        aborts: 173,
        makespan_cycles: 223153,
        memory_fingerprint: 0x1624fa6d90b29e7b,
    },
    Golden {
        kind: StmKind::TinyEtlWb,
        placement: MetadataPlacement::Mram,
        commits: 160,
        aborts: 241,
        makespan_cycles: 1559607,
        memory_fingerprint: 0x1624fa6d90b29e7b,
    },
    Golden {
        kind: StmKind::TinyEtlWt,
        placement: MetadataPlacement::Wram,
        commits: 160,
        aborts: 239,
        makespan_cycles: 359840,
        memory_fingerprint: 0x1624fa6d90b29e7b,
    },
    Golden {
        kind: StmKind::TinyEtlWt,
        placement: MetadataPlacement::Mram,
        commits: 160,
        aborts: 250,
        makespan_cycles: 1719038,
        memory_fingerprint: 0x1624fa6d90b29e7b,
    },
    Golden {
        kind: StmKind::Norec,
        placement: MetadataPlacement::Wram,
        commits: 160,
        aborts: 172,
        makespan_cycles: 255210,
        memory_fingerprint: 0x1624fa6d90b29e7b,
    },
    Golden {
        kind: StmKind::Norec,
        placement: MetadataPlacement::Mram,
        commits: 160,
        aborts: 188,
        makespan_cycles: 1548956,
        memory_fingerprint: 0x1624fa6d90b29e7b,
    },
    Golden {
        kind: StmKind::VrEtlWt,
        placement: MetadataPlacement::Wram,
        commits: 160,
        aborts: 196,
        makespan_cycles: 372247,
        memory_fingerprint: 0x1624fa6d90b29e7b,
    },
    Golden {
        kind: StmKind::VrEtlWt,
        placement: MetadataPlacement::Mram,
        commits: 160,
        aborts: 214,
        makespan_cycles: 1731112,
        memory_fingerprint: 0x1624fa6d90b29e7b,
    },
    Golden {
        kind: StmKind::VrEtlWb,
        placement: MetadataPlacement::Wram,
        commits: 160,
        aborts: 282,
        makespan_cycles: 197888,
        memory_fingerprint: 0x1624fa6d90b29e7b,
    },
    Golden {
        kind: StmKind::VrEtlWb,
        placement: MetadataPlacement::Mram,
        commits: 160,
        aborts: 333,
        makespan_cycles: 1858522,
        memory_fingerprint: 0x1624fa6d90b29e7b,
    },
    Golden {
        kind: StmKind::VrCtlWb,
        placement: MetadataPlacement::Wram,
        commits: 160,
        aborts: 156,
        makespan_cycles: 297096,
        memory_fingerprint: 0x1624fa6d90b29e7b,
    },
    Golden {
        kind: StmKind::VrCtlWb,
        placement: MetadataPlacement::Mram,
        commits: 160,
        aborts: 139,
        makespan_cycles: 2523561,
        memory_fingerprint: 0x1624fa6d90b29e7b,
    },
];

/// The record-path goldens (ArrayBench-A's batched record reads, 3
/// tasklets, seed 42, MRAM metadata): the RecordReader plan/accept/burst
/// hooks for every design, captured under the same oracle-proven revision.
const RECORD_GOLDENS: [Golden; 7] = [
    Golden {
        kind: StmKind::TinyCtlWb,
        placement: MetadataPlacement::Mram,
        commits: 18,
        aborts: 17,
        makespan_cycles: 4317130,
        memory_fingerprint: 0xb0b2ecc82892e0e5,
    },
    Golden {
        kind: StmKind::TinyEtlWb,
        placement: MetadataPlacement::Mram,
        commits: 18,
        aborts: 63,
        makespan_cycles: 4006073,
        memory_fingerprint: 0xb0b2ecc82892e0e5,
    },
    Golden {
        kind: StmKind::TinyEtlWt,
        placement: MetadataPlacement::Mram,
        commits: 18,
        aborts: 63,
        makespan_cycles: 4097977,
        memory_fingerprint: 0xb0b2ecc82892e0e5,
    },
    Golden {
        kind: StmKind::Norec,
        placement: MetadataPlacement::Mram,
        commits: 18,
        aborts: 1,
        makespan_cycles: 1843591,
        memory_fingerprint: 0xb0b2ecc82892e0e5,
    },
    Golden {
        kind: StmKind::VrEtlWt,
        placement: MetadataPlacement::Mram,
        commits: 18,
        aborts: 68,
        makespan_cycles: 7614078,
        memory_fingerprint: 0xb0b2ecc82892e0e5,
    },
    Golden {
        kind: StmKind::VrEtlWb,
        placement: MetadataPlacement::Mram,
        commits: 18,
        aborts: 61,
        makespan_cycles: 6952705,
        memory_fingerprint: 0xb0b2ecc82892e0e5,
    },
    Golden {
        kind: StmKind::VrCtlWb,
        placement: MetadataPlacement::Mram,
        commits: 18,
        aborts: 18,
        makespan_cycles: 5584378,
        memory_fingerprint: 0xb0b2ecc82892e0e5,
    },
];

fn assert_matches_golden(outcome: &SimOutcome, golden: &Golden, cell: &str) {
    let Golden { kind, placement, commits, aborts, makespan_cycles, memory_fingerprint } = golden;
    assert_eq!(outcome.commits, *commits, "{kind} ({placement}, {cell}): commits drifted");
    assert_eq!(outcome.aborts, *aborts, "{kind} ({placement}, {cell}): aborts drifted");
    assert_eq!(
        outcome.makespan_cycles, *makespan_cycles,
        "{kind} ({placement}, {cell}): the platform-operation sequence changed — the composed \
         engine no longer issues what the legacy monolith issued"
    );
    assert_eq!(
        outcome.memory_fingerprint(),
        *memory_fingerprint,
        "{kind} ({placement}, {cell}): final memory drifted"
    );
    assert_eq!(
        outcome.aborts,
        outcome.histograms.iter().flatten().sum::<u64>(),
        "{kind} ({placement}, {cell}): histogram does not account for every abort"
    );
}

/// The contended anchor: every design × both placements against the pinned
/// legacy-equivalent outcome.
#[test]
fn composed_engine_matches_the_pinned_contended_goldens() {
    for golden in &CONTENDED_GOLDENS {
        let outcome = run_golden_cell(golden.kind, golden.placement);
        assert_matches_golden(&outcome, golden, "contended B");
    }
    // The table covers the whole design space — nothing silently dropped.
    for kind in StmKind::ALL {
        for placement in MetadataPlacement::ALL {
            assert!(
                CONTENDED_GOLDENS.iter().any(|g| g.kind == kind && g.placement == placement),
                "{kind} ({placement}) has no pinned golden"
            );
        }
    }
}

/// The record-path anchor: the batched-record cell for every design.
#[test]
fn composed_engine_matches_the_pinned_record_goldens() {
    for golden in &RECORD_GOLDENS {
        let outcome = run_record_golden_cell(golden.kind);
        assert_matches_golden(&outcome, golden, "record A");
    }
    for kind in StmKind::ALL {
        assert!(
            RECORD_GOLDENS.iter().any(|g| g.kind == kind),
            "{kind} has no pinned record golden"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Simulator determinism over the whole design space: the same seeded
    /// cell replayed twice produces the identical outcome — commits,
    /// histograms, memory, cycle count. This is the property the goldens
    /// lean on (a nondeterministic simulator would make pinned literals
    /// meaningless), kept live over arbitrary seeds and tasklet counts.
    #[test]
    fn seeded_cells_replay_bit_identically(
        kind_index in 0usize..StmKind::ALL.len(),
        mram_metadata in any::<bool>(),
        tasklets in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let kind = StmKind::ALL[kind_index];
        let placement =
            if mram_metadata { MetadataPlacement::Mram } else { MetadataPlacement::Wram };
        let cfg = ArrayBenchConfig::workload_b().scaled(0.1);
        let stm = stm_config(kind, placement, &cfg);
        let first = run_sim(algorithm_for(kind), stm, cfg, tasklets, seed);
        let second = run_sim(algorithm_for(kind), stm, cfg, tasklets, seed);
        prop_assert_eq!(first, second);
    }
}

/// The `LockOrder` outcome contract for grouped update records: sorted
/// multi-ORec acquisition may reorder platform operations relative to the
/// legacy per-word `RecordOrder` path, but on uncontended cells the
/// *outcome* — final memory, commit count, zero aborts — must be identical.
#[test]
fn write_record_lock_orders_agree_on_uncontended_outcomes() {
    let cfg = ArrayBenchConfig::workload_b().with_update_record_words(4).scaled(0.1);
    for kind in StmKind::ALL {
        let record_order =
            stm_config(kind, MetadataPlacement::Mram, &cfg).with_lock_order(LockOrder::RecordOrder);
        let sorted = stm_config(kind, MetadataPlacement::Mram, &cfg)
            .with_lock_order(LockOrder::AddressSorted);
        let legacy_path = run_sim(algorithm_for(kind), record_order, cfg, 1, 9);
        let sorted_path = run_sim(algorithm_for(kind), sorted, cfg, 1, 9);
        assert_eq!(
            legacy_path.memory, sorted_path.memory,
            "{kind}: acquisition order changed memory"
        );
        assert_eq!(
            legacy_path.commits, sorted_path.commits,
            "{kind}: acquisition order lost commits"
        );
        assert_eq!(legacy_path.aborts, 0, "{kind}: single tasklet never conflicts");
        assert_eq!(sorted_path.aborts, 0, "{kind}: single tasklet never conflicts");
    }
}

/// Threaded outcome of one cell: commits, aborts and the conserved
/// update-region sum.
fn run_threaded_cell(
    kind: StmKind,
    cfg: ArrayBenchConfig,
    tasklets: usize,
    seed: u64,
) -> (u64, u64, u64) {
    let stm = stm_config(kind, MetadataPlacement::Mram, &cfg);
    let mut dpu = ThreadedDpu::new(stm).expect("metadata fits");
    let (data, report) = run_threaded(&mut dpu, cfg, tasklets, seed).expect("run schedulable");
    (report.commits, report.aborts, data.update_region_sum(&dpu))
}

/// Single-tasklet threaded runs are outcome-deterministic: every design
/// must commit every transaction, abort never, and apply the analytically
/// known number of updates.
#[test]
fn threaded_single_tasklet_outcomes_are_exact_for_every_kind() {
    let cfg = ArrayBenchConfig::workload_b().scaled(0.2);
    let expected_commits = u64::from(cfg.transactions_per_tasklet);
    let expected_sum = expected_commits * u64::from(cfg.updates_applied_per_tx());
    for kind in StmKind::ALL {
        let (commits, aborts, sum) = run_threaded_cell(kind, cfg, 1, 42);
        assert_eq!(commits, expected_commits, "{kind}: lost transactions");
        assert_eq!(aborts, 0, "{kind}: single-tasklet runs never abort");
        assert_eq!(sum, expected_sum, "{kind}: threaded final state diverged");
    }
}

/// Contended threaded runs are nondeterministic in interleaving but not in
/// outcome (ArrayBench increments commute): every design must conserve the
/// same committed total under genuine concurrency.
#[test]
fn threaded_contended_runs_conserve_the_final_state_for_every_kind() {
    let cfg = ArrayBenchConfig::workload_b().scaled(0.25);
    let tasklets = 4;
    let expected_commits = u64::from(cfg.transactions_per_tasklet) * tasklets as u64;
    let expected_sum = expected_commits * u64::from(cfg.updates_applied_per_tx());
    for kind in StmKind::ALL {
        let (commits, _, sum) = run_threaded_cell(kind, cfg, tasklets, 7);
        assert_eq!(commits, expected_commits, "{kind}: lost transactions");
        assert_eq!(sum, expected_sum, "{kind}: lost updates");
    }
}
