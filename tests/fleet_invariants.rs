//! Regression tests pinning the measured fleet runtime (`pim-fleet`) to
//! the analytic multi-DPU model (`pim_sim::MultiDpuPlan`) and to the
//! conservation laws of its sharded workload:
//!
//! * the analytic plan rebuilt from a fleet run's per-round stats agrees
//!   with the measured makespan to the **documented** tolerance — the
//!   fleet issues two host→DPU bulk operations per round (broadcast +
//!   scatter) where the plan charges one, and two extra bulk operations
//!   per rebalance (migration gather + scatter) whose bytes the plan
//!   folds into the adjacent rounds, so the plan is cheaper by exactly
//!   `(rounds + 2·rebalances) · bulk_overhead_s`, and nothing else;
//! * with `overlap` on, every round's cost follows the documented
//!   pipelined formula — `hidden_k = min(pre_k, compute_{k-1})` for
//!   eligible rounds, makespan = Σ (total_k − hidden_k) — bit-identical
//!   for any `host_workers`;
//! * skew-adaptive rebalancing on a 64-DPU fleet at θ=0.99 strictly
//!   improves throughput over the static partition while conserving the
//!   final state, and its migration traffic flows through the transfer
//!   ledger byte-for-byte;
//! * counter increments are conserved against the generated stream, for
//!   any shard count and both routing policies;
//! * the final-state fingerprint is partition-invariant: one shard or
//!   sixteen, route-to-owner or abort-and-retry, static or rebalanced,
//!   the merged global state is the same.

use pim_stm_suite::fleet::{run, FleetConfig, FleetReport, RebalancePolicy};
use pim_stm_suite::sim::KeyDist;
use pim_stm_suite::workloads::{RoutingPolicy, ShardedWorkloadConfig};

fn workload() -> ShardedWorkloadConfig {
    ShardedWorkloadConfig::new(512, 160)
}

fn fleet(n_dpus: usize) -> FleetReport {
    run(&FleetConfig::new(n_dpus, workload()))
}

/// The documented serial divergence between the measured makespan and the
/// analytic plan: one extra bulk overhead per round plus two per rebalance.
fn documented_slack(report: &FleetReport) -> f64 {
    let overhead = report.ledger.transfer_model().bulk_overhead_s;
    (report.rounds.len() as u64 + 2 * report.rebalance.rebalances) as f64 * overhead
}

#[test]
fn analytic_plan_agrees_to_the_documented_tolerance() {
    for n in [1, 4, 16] {
        let report = fleet(n);
        let expected = report.makespan_seconds - documented_slack(&report);
        let analytic = report.analytic_total_seconds();
        assert!(
            (analytic - expected).abs() < 1e-12,
            "{n} DPUs: analytic {analytic} vs expected {expected}"
        );
        // Sanity: the divergence is small relative to the whole run.
        assert!(analytic <= report.makespan_seconds);
        assert!(analytic > 0.5 * report.makespan_seconds);
    }
    // With rebalancing the migration transfers add exactly two bulk
    // overheads per recut — still an equality, not a widened tolerance.
    let skewed = ShardedWorkloadConfig::new(512, 160).with_dist(KeyDist::Zipf { theta: 1.2 });
    let report = run(&FleetConfig::new(8, skewed)
        .with_rebalance(RebalancePolicy::Threshold { max_over_mean: 1.25 }));
    assert!(report.rebalance.rebalances > 0, "the skewed run must actually recut");
    let expected = report.makespan_seconds - documented_slack(&report);
    let analytic = report.analytic_total_seconds();
    assert!(
        (analytic - expected).abs() < 1e-12,
        "rebalanced: analytic {analytic} vs expected {expected}"
    );
}

#[test]
fn analytic_rounds_mirror_the_measured_rounds() {
    let report = fleet(8);
    let plan = report.analytic_plan();
    assert_eq!(plan.rounds.len(), report.rounds.len());
    for (analytic, measured) in plan.rounds.iter().zip(&report.rounds) {
        // The DPU barrier, byte counts and modeled host route/merge
        // transfer verbatim into the plan.
        assert!((analytic.dpu_compute_seconds - measured.dpu_seconds).abs() < 1e-15);
        assert!((analytic.cpu_route_seconds - measured.host_route_seconds).abs() < 1e-15);
        assert!((analytic.cpu_merge_seconds - measured.host_merge_seconds).abs() < 1e-15);
        assert_eq!(analytic.bytes_to_dpus, measured.bytes_to_dpus);
        assert_eq!(analytic.bytes_from_dpus, measured.bytes_from_dpus);
    }
    let executed = plan.execute(report.ledger.transfer_model());
    assert_eq!(executed.rounds, report.rounds.len());
}

#[test]
fn pipelined_rounds_follow_the_documented_formula() {
    let base = FleetConfig::new(8, workload());
    let serial = run(&base);
    let overlapped = run(&base.with_overlap(true));
    // Overlap changes only the cost accounting, never the results.
    assert_eq!(serial.fingerprint, overlapped.fingerprint);
    assert_eq!(serial.total_commits, overlapped.total_commits);

    // The pinned formula: round 0 never overlaps; with route-to-owner and
    // no migrations every later round does, hiding min(pre_k, compute_{k-1}).
    let mut makespan = 0.0;
    let mut prev_compute = 0.0;
    for (k, round) in overlapped.rounds.iter().enumerate() {
        let expected_hidden = if k > 0 { round.pre_seconds().min(prev_compute) } else { 0.0 };
        assert_eq!(round.overlapped, k > 0, "round {k}");
        assert!(
            (round.hidden_seconds - expected_hidden).abs() < 1e-15,
            "round {k}: hidden {} vs min(pre, prev compute) {expected_hidden}",
            round.hidden_seconds
        );
        assert!(
            (round.pipelined_seconds() - (round.total_seconds() - round.hidden_seconds)).abs()
                < 1e-15
        );
        makespan += round.pipelined_seconds();
        prev_compute = round.dpu_seconds;
    }
    assert!(
        (makespan - overlapped.makespan_seconds).abs() < 1e-12,
        "makespan must be the sum of pipelined round costs"
    );

    // The panel aggregates fold from the same per-round numbers.
    let hidden: f64 = overlapped.rounds.iter().map(|r| r.hidden_seconds).sum();
    assert!(hidden > 0.0, "some transfer time must actually hide");
    assert!((overlapped.pipeline.hidden_seconds - hidden).abs() < 1e-15);
    assert_eq!(overlapped.pipeline.overlapped_rounds as usize, overlapped.rounds.len() - 1);
    assert_eq!(overlapped.pipeline.stalled_rounds, 1);
    assert!(
        (serial.makespan_seconds - overlapped.makespan_seconds - hidden).abs() < 1e-12,
        "overlap must save exactly the hidden seconds"
    );

    // The pipelined analytic model brackets the measured makespan by the
    // same documented slack as the serial one.
    let analytic = overlapped.analytic_total_seconds();
    let slack = documented_slack(&overlapped);
    assert!(analytic <= overlapped.makespan_seconds + 1e-15);
    assert!(overlapped.makespan_seconds - analytic <= slack + 1e-15);

    // And the accounting is bit-identical for any host worker count.
    let one = run(&FleetConfig { host_workers: 1, ..base.with_overlap(true) });
    let four = run(&FleetConfig { host_workers: 4, ..base.with_overlap(true) });
    assert_eq!(one.fingerprint, four.fingerprint);
    assert_eq!(one.makespan_seconds.to_bits(), four.makespan_seconds.to_bits());
    assert_eq!(one.pipeline.hidden_seconds.to_bits(), four.pipeline.hidden_seconds.to_bits());
}

#[test]
fn rebalancing_recovers_throughput_on_a_skewed_64_dpu_fleet() {
    let skewed = ShardedWorkloadConfig::new(4096, 512).with_dist(KeyDist::Zipf { theta: 0.99 });
    let static_config = FleetConfig::new(64, skewed);
    let adaptive_config =
        static_config.with_rebalance(RebalancePolicy::Threshold { max_over_mean: 1.25 });
    let fixed = run(&static_config);
    let adaptive = run(&adaptive_config);

    // Rebalancing pays for its migrations: strictly higher throughput.
    assert!(adaptive.rebalance.rebalances > 0, "θ=0.99 must trip the threshold");
    assert!(adaptive.rebalance.migrated_keys > 0);
    assert!(
        adaptive.makespan_seconds < fixed.makespan_seconds,
        "adaptive {} must beat static {}",
        adaptive.makespan_seconds,
        fixed.makespan_seconds
    );
    assert!(adaptive.throughput_tx_per_sec() > fixed.throughput_tx_per_sec());

    // Migrations move state, never change it.
    assert_eq!(adaptive.fingerprint, fixed.fingerprint);
    assert_eq!(adaptive.total_increments, fixed.total_increments);

    // Migration traffic is real ledger traffic: 8 bytes per moved key in
    // each direction, and every byte the rounds attribute is a byte some
    // primitive charged.
    assert_eq!(
        adaptive.rebalance.migration_bytes,
        2 * pim_stm_suite::fleet::MIGRATION_BYTES_PER_KEY * adaptive.rebalance.migrated_keys
    );
    let attributed_to: u64 = adaptive.rounds.iter().map(|r| r.bytes_to_dpus).sum();
    let attributed_from: u64 = adaptive.rounds.iter().map(|r| r.bytes_from_dpus).sum();
    assert_eq!(
        adaptive.ledger.broadcast.bytes + adaptive.ledger.scatter.bytes,
        attributed_to,
        "every host→DPU byte must be attributed to a round"
    );
    assert_eq!(
        adaptive.ledger.gather.bytes, attributed_from,
        "every DPU→host byte must be attributed to a round"
    );
}

#[test]
fn increments_are_conserved_for_any_shard_count() {
    let expected = u64::from(workload().updates_per_tx) * u64::from(workload().total_txns);
    for n in [1, 3, 8, 32] {
        let report = fleet(n);
        assert_eq!(report.total_increments, expected, "{n} DPUs");
        assert_eq!(
            report.shards.iter().map(|s| s.commits).sum::<u64>(),
            report.total_commits,
            "{n} DPUs: shard commits must fold to the fleet total"
        );
    }
}

#[test]
fn fingerprint_is_partition_invariant() {
    let single = fleet(1);
    assert_eq!(single.total_rejected, 0, "one shard has no cross-shard traffic");
    for n in [2, 5, 16] {
        let sharded = fleet(n);
        assert_eq!(
            sharded.fingerprint, single.fingerprint,
            "{n}-way sharding must produce the single-shard final state"
        );
    }
}

#[test]
fn routing_policies_reach_the_same_state_at_different_cost() {
    let owner = fleet(8);
    let retry = run(&FleetConfig::new(8, workload()).with_routing(RoutingPolicy::AbortAndRetry));
    assert_eq!(owner.fingerprint, retry.fingerprint);
    assert_eq!(owner.total_increments, retry.total_increments);
    assert!(retry.total_rejected > 0, "abort-and-retry must probe cross-shard txns");
    assert_eq!(
        retry.total_rejected,
        retry.profile.aborts_for(pim_stm_suite::stm::AbortReason::Explicit),
        "every rejection must appear as an explicit abort in the merged profile"
    );
    assert!(retry.dispatched_subtxns > owner.dispatched_subtxns);
}

#[test]
fn skewed_streams_conserve_and_report_imbalance() {
    let config = FleetConfig::new(
        8,
        ShardedWorkloadConfig::new(512, 160).with_dist(KeyDist::Zipf { theta: 1.2 }),
    );
    let report = run(&config);
    assert_eq!(report.total_increments, 2 * 160, "skew must not break conservation");
    assert!(report.imbalance.hottest_commit_share > 1.5 / 8.0);
    assert!(report.imbalance.max_over_mean_commits > 1.5);
}
