//! Regression tests pinning the measured fleet runtime (`pim-fleet`) to
//! the analytic multi-DPU model (`pim_sim::MultiDpuPlan`) and to the
//! conservation laws of its sharded workload:
//!
//! * the analytic plan rebuilt from a fleet run's per-round stats agrees
//!   with the measured makespan to the **documented** tolerance — the
//!   fleet issues two host→DPU bulk operations per round (broadcast +
//!   scatter) where the plan charges one, so the plan is cheaper by
//!   exactly one `bulk_overhead_s` per round, and nothing else;
//! * counter increments are conserved against the generated stream, for
//!   any shard count and both routing policies;
//! * the final-state fingerprint is partition-invariant: one shard or
//!   sixteen, route-to-owner or abort-and-retry, the merged global state
//!   is the same.

use pim_stm_suite::fleet::{run, FleetConfig, FleetReport};
use pim_stm_suite::sim::KeyDist;
use pim_stm_suite::workloads::{RoutingPolicy, ShardedWorkloadConfig};

fn workload() -> ShardedWorkloadConfig {
    ShardedWorkloadConfig::new(512, 160)
}

fn fleet(n_dpus: usize) -> FleetReport {
    run(&FleetConfig::new(n_dpus, workload()))
}

#[test]
fn analytic_plan_agrees_to_the_documented_tolerance() {
    for n in [1, 4, 16] {
        let report = fleet(n);
        let overhead = report.ledger.transfer_model().bulk_overhead_s;
        // The only divergence: one extra bulk overhead per round on the
        // fleet side (broadcast and scatter are separate bulk calls).
        let expected = report.makespan_seconds - report.rounds.len() as f64 * overhead;
        let analytic = report.analytic_total_seconds();
        assert!(
            (analytic - expected).abs() < 1e-12,
            "{n} DPUs: analytic {analytic} vs expected {expected}"
        );
        // Sanity: the divergence is small relative to the whole run.
        assert!(analytic <= report.makespan_seconds);
        assert!(analytic > 0.5 * report.makespan_seconds);
    }
}

#[test]
fn analytic_rounds_mirror_the_measured_rounds() {
    let report = fleet(8);
    let plan = report.analytic_plan();
    assert_eq!(plan.rounds.len(), report.rounds.len());
    for (analytic, measured) in plan.rounds.iter().zip(&report.rounds) {
        // The DPU barrier, byte counts and modeled host merge transfer
        // verbatim into the plan.
        assert!((analytic.dpu_compute_seconds - measured.dpu_seconds).abs() < 1e-15);
        assert!((analytic.cpu_merge_seconds - measured.host_seconds).abs() < 1e-15);
        assert_eq!(analytic.bytes_to_dpus, measured.bytes_to_dpus);
        assert_eq!(analytic.bytes_from_dpus, measured.bytes_from_dpus);
    }
    let executed = plan.execute(report.ledger.transfer_model());
    assert_eq!(executed.rounds, report.rounds.len());
}

#[test]
fn increments_are_conserved_for_any_shard_count() {
    let expected = u64::from(workload().updates_per_tx) * u64::from(workload().total_txns);
    for n in [1, 3, 8, 32] {
        let report = fleet(n);
        assert_eq!(report.total_increments, expected, "{n} DPUs");
        assert_eq!(
            report.shards.iter().map(|s| s.commits).sum::<u64>(),
            report.total_commits,
            "{n} DPUs: shard commits must fold to the fleet total"
        );
    }
}

#[test]
fn fingerprint_is_partition_invariant() {
    let single = fleet(1);
    assert_eq!(single.total_rejected, 0, "one shard has no cross-shard traffic");
    for n in [2, 5, 16] {
        let sharded = fleet(n);
        assert_eq!(
            sharded.fingerprint, single.fingerprint,
            "{n}-way sharding must produce the single-shard final state"
        );
    }
}

#[test]
fn routing_policies_reach_the_same_state_at_different_cost() {
    let owner = fleet(8);
    let retry = run(&FleetConfig::new(8, workload()).with_routing(RoutingPolicy::AbortAndRetry));
    assert_eq!(owner.fingerprint, retry.fingerprint);
    assert_eq!(owner.total_increments, retry.total_increments);
    assert!(retry.total_rejected > 0, "abort-and-retry must probe cross-shard txns");
    assert_eq!(
        retry.total_rejected,
        retry.profile.aborts_for(pim_stm_suite::stm::AbortReason::Explicit),
        "every rejection must appear as an explicit abort in the merged profile"
    );
    assert!(retry.dispatched_subtxns > owner.dispatched_subtxns);
}

#[test]
fn skewed_streams_conserve_and_report_imbalance() {
    let config = FleetConfig::new(
        8,
        ShardedWorkloadConfig::new(512, 160).with_dist(KeyDist::Zipf { theta: 1.2 }),
    );
    let report = run(&config);
    assert_eq!(report.total_increments, 2 * 160, "skew must not break conservation");
    assert!(report.imbalance.hottest_commit_share > 1.5 / 8.0);
    assert!(report.imbalance.max_over_mean_commits > 1.5);
}
