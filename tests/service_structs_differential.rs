//! Differential tests of the transactional service structures.
//!
//! [`TxHashMap`] and [`TxQueue`] are driven by random operation scripts and
//! checked, operation by operation, against the obvious `std` references
//! (`HashMap<u64, u64>` and a bounded `VecDeque<u64>`), for **every** STM
//! design on **both** executors. A second group runs the structures under
//! real multi-tasklet contention and checks the global invariants the
//! service layer relies on: transfers conserve the total balance, and the
//! queue neither loses an accepted push nor pops a value twice.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use proptest::prelude::*;

use pim_stm_suite::sim::{Dpu, DpuConfig, SimRng, TaskletCtx, TaskletStats, Tier};
use pim_stm_suite::stm::threaded::ThreadedDpu;
use pim_stm_suite::stm::{StmConfig, StmKind, StmShared};
use pim_stm_suite::workloads::{TxHashMap, TxQueue};

/// Keyspace for scripted operations (well under the 64-slot table, so the
/// map can never legitimately report `MapFull`).
const KEYS: u64 = 24;
/// Map slots requested per run.
const MAP_CAPACITY: u32 = 64;
/// Queue capacity — small on purpose, so scripts exercise the full path.
const QUEUE_CAPACITY: u32 = 4;

/// One scripted structure operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Get(u64),
    Put(u64, u64),
    Transfer(u64, u64, u64),
    Push(u64),
    Pop,
}

/// What one operation observably did; compared across implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// `get` result.
    Value(Option<u64>),
    /// `put` result: the previous value.
    Replaced(Option<u64>),
    /// `transfer` result: whether funds moved.
    Moved(bool),
    /// `push` result: whether the queue accepted the value.
    Accepted(bool),
    /// `pop` result.
    Popped(Option<u64>),
}

fn decode(code: u8, k1: u64, k2: u64, v: u64) -> Op {
    match code {
        0 | 1 => Op::Get(k1),
        2 | 3 => Op::Put(k1, v),
        4 | 5 => Op::Transfer(k1, k2, v),
        6 => Op::Push(v),
        _ => Op::Pop,
    }
}

fn arb_script() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0u8..8, 0u64..KEYS, 0u64..KEYS, 1u64..100), 1..80)
        .prop_map(|raw| raw.into_iter().map(|(c, k1, k2, v)| decode(c, k1, k2, v)).collect())
}

/// The reference model: plain `std` collections, mirroring the transactional
/// semantics (transfer creates missing keys on demand, credit before debit).
#[derive(Default)]
struct Model {
    map: HashMap<u64, u64>,
    queue: VecDeque<u64>,
}

impl Model {
    fn apply(&mut self, op: Op) -> Outcome {
        match op {
            Op::Get(k) => Outcome::Value(self.map.get(&k).copied()),
            Op::Put(k, v) => Outcome::Replaced(self.map.insert(k, v)),
            Op::Transfer(from, to, amount) => {
                let balance = self.map.get(&from).copied().unwrap_or(0);
                if from == to || balance < amount {
                    return Outcome::Moved(from == to && balance >= amount);
                }
                let credit = self.map.get(&to).copied().unwrap_or(0);
                self.map.insert(to, credit + amount);
                self.map.insert(from, balance - amount);
                Outcome::Moved(true)
            }
            Op::Push(v) => {
                if self.queue.len() >= QUEUE_CAPACITY as usize {
                    Outcome::Accepted(false)
                } else {
                    self.queue.push_back(v);
                    Outcome::Accepted(true)
                }
            }
            Op::Pop => Outcome::Popped(self.queue.pop_front()),
        }
    }

    fn run(script: &[Op]) -> Vec<Outcome> {
        let mut model = Model::default();
        script.iter().map(|&op| model.apply(op)).collect()
    }
}

/// Applies one op through the transactional structures. Generic over the
/// executor: both hand the body a `TxOps` view.
fn apply_tx<O: pim_stm_suite::stm::TxOps>(
    tx: &mut O,
    map: &TxHashMap,
    queue: &TxQueue,
    op: Op,
) -> Result<Outcome, pim_stm_suite::stm::Abort> {
    Ok(match op {
        Op::Get(k) => Outcome::Value(map.get(tx, k)?),
        Op::Put(k, v) => Outcome::Replaced(map.put(tx, k, v)?.expect("table cannot fill")),
        Op::Transfer(from, to, amount) => {
            Outcome::Moved(map.transfer(tx, from, to, amount)?.expect("table cannot fill"))
        }
        Op::Push(v) => Outcome::Accepted(queue.push(tx, v)?),
        Op::Pop => Outcome::Popped(queue.pop(tx)?),
    })
}

/// Runs the script on the threaded executor, one transaction per op.
fn run_threaded(kind: StmKind, script: &[Op]) -> Vec<Outcome> {
    let mut dpu = ThreadedDpu::new(StmConfig::small_wram(kind)).expect("metadata fits");
    let map = TxHashMap::allocate(&mut dpu, Tier::Mram, MAP_CAPACITY).expect("map fits");
    let queue = TxQueue::allocate(&mut dpu, Tier::Mram, QUEUE_CAPACITY).expect("queue fits");
    let outcomes = Mutex::new(Vec::with_capacity(script.len()));
    dpu.run(1, |mut tasklet| {
        for &op in script {
            let outcome = tasklet.transaction(|tx| apply_tx(tx, &map, &queue, op));
            outcomes.lock().unwrap().push(outcome);
        }
    })
    .expect("one tasklet is always within the limit");
    outcomes.into_inner().unwrap()
}

/// Runs the script on the simulator, one single-tasklet transaction per op.
fn run_sim(kind: StmKind, script: &[Op]) -> Vec<Outcome> {
    let mut dpu = Dpu::new(DpuConfig::small());
    let shared = StmShared::allocate(&mut dpu, StmConfig::small_wram(kind)).expect("metadata fits");
    let mut slot = shared.register_tasklet(&mut dpu, 0).expect("slot fits");
    let map = TxHashMap::allocate(&mut dpu, Tier::Mram, MAP_CAPACITY).expect("map fits");
    let queue = TxQueue::allocate(&mut dpu, Tier::Mram, QUEUE_CAPACITY).expect("queue fits");
    let alg = pim_stm_suite::stm::algorithm_for(kind);
    let mut stats = TaskletStats::new();
    script
        .iter()
        .map(|&op| {
            let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
            pim_stm_suite::stm::run_transaction(alg, &shared, &mut slot, &mut ctx, |tx| {
                apply_tx(tx, &map, &queue, op)
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every STM design, on both executors, serves an arbitrary script with
    /// exactly the outcomes of the `std` reference model.
    #[test]
    fn scripts_match_the_std_reference_on_both_executors(script in arb_script()) {
        let expected = Model::run(&script);
        for kind in StmKind::ALL {
            prop_assert_eq!(&run_threaded(kind, &script), &expected, "threaded {:?}", kind);
            prop_assert_eq!(&run_sim(kind, &script), &expected, "simulator {:?}", kind);
        }
    }
}

/// Sums the balances of `keys` through one transactional reader.
fn total_balance(dpu: &mut ThreadedDpu, map: TxHashMap, keys: u64) -> u64 {
    let total = Mutex::new(0u64);
    dpu.run(1, |mut tasklet| {
        let sum = tasklet.transaction(|tx| {
            let mut sum = 0;
            for key in 0..keys {
                sum += map.get(tx, key)?.unwrap_or(0);
            }
            Ok(sum)
        });
        *total.lock().unwrap() = sum;
    })
    .expect("one tasklet is always within the limit");
    total.into_inner().unwrap()
}

#[test]
fn contended_transfers_conserve_the_total_balance_for_every_design() {
    const ACCOUNTS: u64 = 8;
    const STAKE: u64 = 100;
    for kind in StmKind::ALL {
        let mut dpu = ThreadedDpu::new(StmConfig::small_wram(kind)).expect("metadata fits");
        let map = TxHashMap::allocate(&mut dpu, Tier::Mram, MAP_CAPACITY).expect("map fits");
        dpu.run(1, |mut tasklet| {
            for key in 0..ACCOUNTS {
                tasklet.transaction(|tx| map.put(tx, key, STAKE).map(|r| r.expect("fits")));
            }
        })
        .expect("seeding runs on one tasklet");
        dpu.run(4, |mut tasklet| {
            let mut rng = SimRng::new(0xD1F + tasklet.tasklet_id() as u64);
            for _ in 0..50 {
                let from = rng.next_range(ACCOUNTS);
                let to = rng.next_range(ACCOUNTS);
                let amount = 1 + rng.next_range(30);
                tasklet.transaction(|tx| {
                    map.transfer(tx, from, to, amount).map(|r| r.expect("table cannot fill"))
                });
            }
        })
        .expect("four tasklets are within the limit");
        assert_eq!(
            total_balance(&mut dpu, map, ACCOUNTS),
            ACCOUNTS * STAKE,
            "{kind:?} lost or minted funds under contention"
        );
    }
}

#[test]
fn contended_queue_never_loses_an_accepted_push_nor_pops_twice() {
    for kind in StmKind::ALL {
        let mut dpu = ThreadedDpu::new(StmConfig::small_wram(kind)).expect("metadata fits");
        let queue = TxQueue::allocate(&mut dpu, Tier::Mram, 16).expect("queue fits");
        let accepted = Mutex::new(Vec::new());
        let popped = Mutex::new(Vec::new());
        dpu.run(4, |mut tasklet| {
            let id = tasklet.tasklet_id() as u64;
            for i in 0..40u64 {
                if i % 3 == 2 {
                    let got = tasklet.transaction(|tx| queue.pop(tx));
                    if let Some(value) = got {
                        popped.lock().unwrap().push(value);
                    }
                } else {
                    let value = (id << 32) | i;
                    if tasklet.transaction(|tx| queue.push(tx, value)) {
                        accepted.lock().unwrap().push(value);
                    }
                }
            }
        })
        .expect("four tasklets are within the limit");
        // Drain what is still enqueued, then compare multisets.
        let drained = Mutex::new(Vec::new());
        dpu.run(1, |mut tasklet| {
            let rest = tasklet.transaction(|tx| {
                let mut rest = Vec::new();
                while let Some(value) = queue.pop(tx)? {
                    rest.push(value);
                }
                Ok(rest)
            });
            drained.lock().unwrap().extend(rest);
        })
        .expect("draining runs on one tasklet");
        let mut seen = popped.into_inner().unwrap();
        seen.extend(drained.into_inner().unwrap());
        let mut expected = accepted.into_inner().unwrap();
        expected.sort_unstable();
        seen.sort_unstable();
        assert_eq!(seen, expected, "{kind:?} lost an accepted push or popped a value twice");
    }
}
