//! Cross-crate integration tests: every STM design, on both executors and
//! both metadata placements, must preserve the fundamental transactional
//! invariants the workloads rely on.

use pim_stm_suite::sim::{Dpu, DpuConfig, Scheduler, StepStatus, TaskletCtx, TaskletProgram, Tier};
use pim_stm_suite::stm::threaded::ThreadedDpu;
use pim_stm_suite::stm::{algorithm_for, MetadataPlacement, StmConfig, StmKind, StmShared};
use pim_stm_suite::workloads::{RunSpec, TxMachine, Workload};

/// A tasklet program that repeatedly moves one unit between two pseudo-random
/// cells of a shared table, exercising conflicts between all tasklets.
struct TransferProgram {
    tm: TxMachine,
    table: pim_stm_suite::sim::Addr,
    cells: u32,
    remaining: u32,
    state: u8,
    from: u32,
    to: u32,
    from_balance: u64,
    to_balance: u64,
    step_seed: u64,
}

impl TransferProgram {
    fn pick(&mut self) {
        self.step_seed = self.step_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.from = ((self.step_seed >> 33) % u64::from(self.cells)) as u32;
        self.to = ((self.step_seed >> 13) % u64::from(self.cells)) as u32;
        if self.to == self.from {
            self.to = (self.to + 1) % self.cells;
        }
    }
}

impl TaskletProgram for TransferProgram {
    fn step(&mut self, ctx: &mut TaskletCtx<'_>) -> StepStatus {
        match self.state {
            0 => {
                if self.remaining == 0 {
                    return StepStatus::Finished;
                }
                self.remaining -= 1;
                self.pick();
                self.state = 1;
            }
            1 => {
                self.tm.begin(ctx);
                self.state = 2;
            }
            // The transaction body is split over several scheduler steps so
            // that transactions of different tasklets genuinely overlap.
            2 => match self.tm.read(ctx, self.table.offset(self.from)) {
                Ok(balance) => {
                    self.from_balance = balance;
                    self.state = 3;
                }
                Err(abort) => {
                    self.tm.on_abort(ctx, abort.reason);
                    self.state = 1;
                }
            },
            3 => match self.tm.read(ctx, self.table.offset(self.to)) {
                Ok(balance) => {
                    self.to_balance = balance;
                    self.state = 4;
                }
                Err(abort) => {
                    self.tm.on_abort(ctx, abort.reason);
                    self.state = 1;
                }
            },
            4 => {
                let result = self
                    .tm
                    .write(ctx, self.table.offset(self.from), self.from_balance.wrapping_sub(1))
                    .and_then(|()| {
                        self.tm.write(
                            ctx,
                            self.table.offset(self.to),
                            self.to_balance.wrapping_add(1),
                        )
                    });
                match result {
                    Ok(()) => self.state = 5,
                    Err(abort) => {
                        self.tm.on_abort(ctx, abort.reason);
                        self.state = 1;
                    }
                }
            }
            5 => match self.tm.commit(ctx) {
                Ok(()) => self.state = 0,
                Err(abort) => {
                    self.tm.on_abort(ctx, abort.reason);
                    self.state = 1;
                }
            },
            _ => unreachable!(),
        }
        StepStatus::Running
    }
}

fn run_transfers(kind: StmKind, placement: MetadataPlacement, tasklets: usize) -> (u64, u64, u64) {
    const CELLS: u32 = 16;
    const INITIAL: u64 = 1_000;
    let mut dpu = Dpu::new(DpuConfig::small());
    let config = StmConfig::new(kind, placement).with_lock_table_entries(64);
    let shared = StmShared::allocate(&mut dpu, config).expect("metadata fits");
    let table = dpu.alloc(Tier::Mram, CELLS).expect("table fits");
    for i in 0..CELLS {
        dpu.poke(table.offset(i), INITIAL);
    }
    let programs: Vec<Box<dyn TaskletProgram>> = (0..tasklets)
        .map(|t| {
            let slot = shared.register_tasklet(&mut dpu, t).expect("slot fits");
            let tm = TxMachine::new(shared.clone(), slot, algorithm_for(kind));
            Box::new(TransferProgram {
                tm,
                table,
                cells: CELLS,
                remaining: 150,
                state: 0,
                from: 0,
                to: 1,
                from_balance: 0,
                to_balance: 0,
                step_seed: 0x1234_5678 + t as u64 * 977,
            }) as Box<dyn TaskletProgram>
        })
        .collect();
    let report = Scheduler::new().run(&mut dpu, programs);
    let total: u64 = (0..CELLS).map(|i| dpu.peek(table.offset(i))).sum();
    (total, report.total_commits(), report.total_aborts())
}

#[test]
fn simulated_transfers_conserve_money_for_every_design_and_placement() {
    for kind in StmKind::ALL {
        for placement in MetadataPlacement::ALL {
            let tasklets = 6;
            let (total, commits, _aborts) = run_transfers(kind, placement, tasklets);
            assert_eq!(
                total,
                16 * 1_000,
                "{kind}/{placement}: committed transfers must conserve the total"
            );
            assert_eq!(
                commits,
                150 * tasklets as u64,
                "{kind}/{placement}: every transfer must eventually commit"
            );
        }
    }
}

#[test]
fn contended_designs_actually_abort_sometimes() {
    // Sanity check that the conservation test above is exercising real
    // contention rather than accidentally serialised execution.
    let mut any_aborts = 0;
    for kind in [StmKind::TinyEtlWb, StmKind::VrEtlWb, StmKind::Norec] {
        let (_, _, aborts) = run_transfers(kind, MetadataPlacement::Mram, 8);
        any_aborts += aborts;
    }
    assert!(any_aborts > 0, "8 tasklets over 16 cells should conflict at least once");
}

#[test]
fn threaded_executor_agrees_with_simulator_on_final_state() {
    // The same deterministic per-tasklet operation sequences executed on the
    // threaded executor must preserve the same invariant (the interleaving
    // differs, but the total is conserved either way).
    for kind in StmKind::ALL {
        let config = StmConfig::new(kind, MetadataPlacement::Wram).with_lock_table_entries(64);
        let mut dpu = ThreadedDpu::new(config).expect("metadata fits");
        let table = dpu.alloc(Tier::Mram, 16).expect("table fits");
        for i in 0..16 {
            dpu.poke(table.offset(i), 1_000);
        }
        dpu.run(6, |mut tasklet| {
            let mut seed = 0x1234_5678 + tasklet.tasklet_id() as u64 * 977;
            for _ in 0..150 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let from = ((seed >> 33) % 16) as u32;
                let mut to = ((seed >> 13) % 16) as u32;
                if to == from {
                    to = (to + 1) % 16;
                }
                tasklet.transaction(|tx| {
                    let a = tx.read(table.offset(from))?;
                    let b = tx.read(table.offset(to))?;
                    tx.write(table.offset(from), a.wrapping_sub(1))?;
                    tx.write(table.offset(to), b.wrapping_add(1))?;
                    Ok(())
                });
            }
        })
        .expect("6 tasklets is within the hardware limit");
        let total: u64 = (0..16).map(|i| dpu.peek(table.offset(i))).sum();
        assert_eq!(total, 16_000, "{kind}: threaded executor lost or duplicated money");
    }
}

#[test]
fn every_workload_runs_under_every_design_at_tiny_scale() {
    // A broad end-to-end smoke test over the full (workload × design) matrix
    // the paper evaluates, at a very small scale.
    for workload in [
        Workload::ArrayA,
        Workload::ArrayB,
        Workload::ListLc,
        Workload::ListHc,
        Workload::KmeansLc,
        Workload::KmeansHc,
        Workload::LabyrinthS,
    ] {
        for kind in StmKind::ALL {
            let report =
                RunSpec::new(workload, kind, MetadataPlacement::Mram, 3).with_scale(0.04).run();
            assert!(report.total_commits() > 0, "{workload}/{kind}: nothing committed");
            assert!(report.throughput_tx_per_sec() > 0.0, "{workload}/{kind}: zero throughput");
        }
    }
}
