//! Read-side DMA batching: correctness and cost.
//!
//! PR 2 coalesced the *write* path (commit-time redo-log bursts); the
//! record-access layer (`pim_stm::access`) does the same for the *read*
//! path: under `ReadStrategy::Batched` a record read moves its data as one
//! `load_block` burst per contiguous run while the per-word metadata
//! protocol (ORec sample/re-check, read-lock acquisition, sequence-lock
//! bracket) is unchanged. These tests pin down the two properties the
//! optimisation must have:
//!
//! * **strategy equivalence** — batched and word-wise reads observe the
//!   same values: byte-identical final memory and equal commit counts on
//!   the read-dominated ArrayBench-A cell, across all 7 designs × both
//!   metadata placements × both executors;
//! * **strictly fewer DMA setups per commit** — for the ORec write-back
//!   designs (Tiny-WB, VR-WB), whose reads were word-wise until this
//!   layer existed, the simulator's MRAM DMA setup count per commit drops
//!   on ArrayBench-A.

use proptest::prelude::*;

use pim_stm_suite::stm::{MetadataPlacement, ReadStrategy, StmKind};
use pim_stm_suite::workloads::spec::Executor;
use pim_stm_suite::workloads::{RunSpec, Workload};

/// One small read-dominated ArrayBench-A cell (5 record reads of 20 words
/// plus 20 updates per transaction).
fn array_a(kind: StmKind, placement: MetadataPlacement, tasklets: usize, seed: u64) -> RunSpec {
    RunSpec::new(Workload::ArrayA, kind, placement, tasklets).with_scale(0.03).with_seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary seeds and tasklet counts, batched and word-wise reads
    /// leave byte-identical final memory and commit the same transaction
    /// count, for every design and both metadata placements (simulator:
    /// fully deterministic, so equality is exact).
    #[test]
    fn batched_reads_are_byte_identical_to_word_wise(
        kind_index in 0usize..StmKind::ALL.len(),
        mram_metadata in any::<bool>(),
        tasklets in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let kind = StmKind::ALL[kind_index];
        let placement =
            if mram_metadata { MetadataPlacement::Mram } else { MetadataPlacement::Wram };
        let spec = array_a(kind, placement, tasklets, seed);
        let word = spec
            .with_read_strategy(ReadStrategy::WordWise)
            .run_on(Executor::Simulator);
        let batched = spec
            .with_read_strategy(ReadStrategy::Batched)
            .run_on(Executor::Simulator);
        word.assert_invariants();
        batched.assert_invariants();
        prop_assert_eq!(
            word.fingerprint,
            batched.fingerprint,
            "{} ({}): final memory diverged",
            kind,
            placement
        );
        prop_assert_eq!(word.commits, batched.commits, "{}: commit counts diverged", kind);
    }
}

/// The exhaustive half of the equivalence claim: all 7 designs × both
/// placements × both executors agree on the final state (ArrayBench is
/// commutative, so even nondeterministic threaded interleavings land on
/// one fingerprint) and on the commit count.
#[test]
fn strategies_agree_across_kinds_placements_and_executors() {
    for kind in StmKind::ALL {
        for placement in MetadataPlacement::ALL {
            for executor in Executor::ALL {
                let spec = array_a(kind, placement, 2, 42);
                let word = spec.with_read_strategy(ReadStrategy::WordWise).run_on(executor);
                let batched = spec.with_read_strategy(ReadStrategy::Batched).run_on(executor);
                word.assert_invariants();
                batched.assert_invariants();
                assert_eq!(
                    word.fingerprint, batched.fingerprint,
                    "{kind} ({placement}, {executor}): final memory diverged"
                );
                assert_eq!(
                    word.commits, batched.commits,
                    "{kind} ({placement}, {executor}): commit counts diverged"
                );
            }
        }
    }
}

fn setups_per_commit(kind: StmKind, tasklets: usize, strategy: ReadStrategy) -> (f64, u64, u64) {
    let report = array_a(kind, MetadataPlacement::Mram, tasklets, 42)
        .with_read_strategy(strategy)
        .run_on(Executor::Simulator);
    report.assert_invariants();
    let profile = report.merged_profile();
    (profile.dma_setups_per_commit(), report.fingerprint, report.aborts)
}

/// The acceptance regression, contention-free half: a single-tasklet
/// ArrayBench-A run is deterministic and abort-free, so the per-commit DMA
/// setup difference isolates the read path — batching must be strictly
/// cheaper for the ORec write-back designs (whose reads were word-wise
/// before the access layer), with identical final memory.
#[test]
fn tiny_and_vr_wb_pay_fewer_dma_setups_per_commit_with_batching() {
    for kind in [StmKind::TinyEtlWb, StmKind::TinyCtlWb, StmKind::VrEtlWb, StmKind::VrCtlWb] {
        let (word, word_state, word_aborts) = setups_per_commit(kind, 1, ReadStrategy::WordWise);
        let (batched, batched_state, _) = setups_per_commit(kind, 1, ReadStrategy::Batched);
        assert_eq!(word_aborts, 0, "{kind}: a single tasklet never conflicts");
        assert_eq!(word_state, batched_state, "{kind}: final array state diverged");
        assert!(
            batched < word,
            "{kind}: batched reads must issue fewer MRAM DMA setups per commit \
             ({batched:.1} vs {word:.1})"
        );
    }
}

/// The contended half: with 4 tasklets the DMA timing shift also perturbs
/// the interleaving (and so per-design abort counts), but across the ORec
/// write-back family batching still lowers the aggregate setups-per-commit
/// — and every design's committed array state is unchanged (increments
/// commute).
#[test]
fn batching_saves_setups_per_commit_under_contention_in_aggregate() {
    let mut word_total = 0.0;
    let mut batched_total = 0.0;
    for kind in [StmKind::TinyEtlWb, StmKind::TinyCtlWb, StmKind::VrEtlWb, StmKind::VrCtlWb] {
        let (word, word_state, _) = setups_per_commit(kind, 4, ReadStrategy::WordWise);
        let (batched, batched_state, _) = setups_per_commit(kind, 4, ReadStrategy::Batched);
        assert_eq!(word_state, batched_state, "{kind}: final array state diverged");
        word_total += word;
        batched_total += batched;
    }
    assert!(
        batched_total < word_total,
        "read batching must save MRAM DMA setups per commit across the ORec write-back \
         family ({batched_total:.1} vs {word_total:.1})"
    );
}

/// NOrec had a batched record read before the shared layer existed; the
/// port must preserve its advantage over word-wise.
#[test]
fn norec_burst_survives_the_port_onto_the_access_layer() {
    let (word, word_state, _) = setups_per_commit(StmKind::Norec, 1, ReadStrategy::WordWise);
    let (batched, batched_state, _) = setups_per_commit(StmKind::Norec, 1, ReadStrategy::Batched);
    assert_eq!(word_state, batched_state);
    assert!(batched < word, "NOrec: {batched:.1} vs {word:.1} setups/commit");
}

/// Batching must not disturb the threaded executor (where `load_block`
/// degenerates to per-word atomic loads): same conserved state either way.
#[test]
fn batching_is_inert_on_the_threaded_executor() {
    let spec = array_a(StmKind::TinyEtlWb, MetadataPlacement::Wram, 4, 7);
    let word = spec.with_read_strategy(ReadStrategy::WordWise).run_on(Executor::Threaded);
    let batched = spec.with_read_strategy(ReadStrategy::Batched).run_on(Executor::Threaded);
    word.assert_invariants();
    batched.assert_invariants();
    assert_eq!(word.fingerprint, batched.fingerprint);
}
