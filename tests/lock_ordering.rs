//! Sorted multi-ORec acquisition (`LockOrder::AddressSorted`, the PR-4
//! metadata-batching follow-up): encounter-time-locking record writes
//! acquire their ownership records in one pass ordered by lock-table
//! address (deduplicated), *before* any logging or data stores.
//!
//! Two things change relative to the per-word `RecordOrder` baseline:
//!
//! * **global acquisition order** — consecutive data words usually map to
//!   consecutive lock-table entries, but the hash wraps at the table size,
//!   so overlapping records can name the same ORecs in different orders;
//!   a global order turns the symmetric lock-order duel (each transaction
//!   holding an ORec the other wants, both aborting) into a single loser;
//! * **a shrunken abort window** — conflicts surface during the
//!   acquisition pass, before the transaction has exposed a single
//!   write-through store or pushed a single log entry, so an aborting
//!   batched record write wastes *no* data movement and has nothing dirty
//!   in memory while it holds partial locks.
//!
//! The duel-rate effect needs genuinely concurrent partial acquisition:
//! the discrete-event simulator executes a whole `write_record` as one
//! atomic scheduler step (abort *counts* there differ between orders only
//! through cycle-timing chaos), and on a time-slicing single-core host the
//! threaded counts are preemption-noise-dominated. What is deterministic
//! on every host — and is asserted here at the `AbortReason` level, on the
//! ArrayBench-B cell shape (4-entry update records in the 10-entry region,
//! with a wrapping lock table) — is the abort-window half: the same
//! standing conflict aborts both orders with `WriteConflict`, but the
//! sorted path aborts with zero wasted data traffic and an empty log where
//! the record-order path has already stored, logged and rolled back.

use pim_stm_suite::sim::{Dpu, DpuConfig, TaskletCtx, TaskletStats, Tier};
use pim_stm_suite::stm::threaded::ThreadedDpu;
use pim_stm_suite::stm::{
    algorithm_for, AbortReason, LockOrder, MetadataPlacement, StmConfig, StmKind, StmShared,
};
use pim_stm_suite::workloads::array_bench::{run_threaded, ArrayBenchConfig};

/// The ArrayBench-B grouped-update cell: the paper's 10-entry update
/// region, its 4 updates grouped into one contiguous record, and a 5-entry
/// lock table so every record's ORec sequence wraps (the configuration
/// where acquisition order is *not* already address order).
fn grouped_workload_b() -> ArrayBenchConfig {
    ArrayBenchConfig::workload_b().with_update_record_words(4)
}

/// Outcome of one manufactured-conflict probe: the abort reason the record
/// write failed with, the MRAM data words it moved before failing
/// (including rollback traffic), and the log entries left in its write set.
struct AbortWindow {
    reason: AbortReason,
    wasted_mram_words: u64,
    logged_entries: u32,
}

/// Tasklet 1 write-locks one word in the middle of the update region and
/// stays in flight; tasklet 0 then attempts the grouped record write over
/// it. Deterministic on the simulator: the conflict, the reason and every
/// word of wasted traffic are exact.
fn probe_abort_window(kind: StmKind, order: LockOrder) -> AbortWindow {
    let cfg = grouped_workload_b();
    // Metadata in WRAM so the MRAM DMA counter isolates *data* movement.
    let stm = StmConfig::new(kind, MetadataPlacement::Wram)
        .with_read_set_capacity(cfg.read_set_capacity())
        .with_write_set_capacity(cfg.write_set_capacity())
        .with_lock_table_entries(5)
        .with_lock_order(order);
    let mut dpu = Dpu::new(DpuConfig::small());
    let shared = StmShared::allocate(&mut dpu, stm).expect("metadata fits");
    let mut slot0 = shared.register_tasklet(&mut dpu, 0).expect("logs fit");
    let mut slot1 = shared.register_tasklet(&mut dpu, 1).expect("logs fit");
    let region = dpu.alloc(Tier::Mram, 10).expect("update region fits");
    for i in 0..10 {
        dpu.poke(region.offset(i), 100 + u64::from(i));
    }
    let alg = algorithm_for(kind);

    // T1: an in-flight transaction holding the ORec of word 4.
    let mut stats1 = TaskletStats::new();
    {
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats1, 1, 2, 0);
        alg.begin(&shared, &mut slot1, &mut ctx);
        alg.write(&shared, &mut slot1, &mut ctx, region.offset(4), 999).unwrap();
    }

    // T0: the grouped record write [2..6] contains the locked word.
    let mut stats0 = TaskletStats::new();
    let (reason, wasted, logged) = {
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats0, 0, 2, 0);
        alg.begin(&shared, &mut slot0, &mut ctx);
        let before = ctx.stats().mram_dma_words;
        let err = alg
            .write_record(&shared, &mut slot0, &mut ctx, region.offset(2), &[1, 2, 3, 4])
            .expect_err("the record overlaps a foreign write lock");
        (err.reason, ctx.stats().mram_dma_words - before, slot0.write_set_len())
    };

    // Whatever the order, rollback must have restored memory exactly
    // (word 4 belongs to T1, which has write-through-stored 999 for WT
    // kinds; every other word is untouched).
    for i in 0..10 {
        if i != 4 {
            assert_eq!(
                dpu.peek(region.offset(i)),
                100 + u64::from(i),
                "{kind} ({order}): word {i} not rolled back"
            );
        }
    }
    AbortWindow { reason, wasted_mram_words: wasted, logged_entries: logged }
}

/// The AbortReason-level regression on the ArrayBench-B cell shape: both
/// acquisition orders fail the conflicting record write with
/// `WriteConflict`, but the sorted order aborts **before the abort window
/// opens** — zero wasted MRAM data words (the record-order write-through
/// path has already exposed stores and undone them) and zero log entries
/// (the record-order write-back path has already pushed some).
#[test]
fn sorted_acquisition_aborts_before_any_data_work_on_arraybench_b() {
    for kind in [StmKind::TinyEtlWt, StmKind::TinyEtlWb, StmKind::VrEtlWt, StmKind::VrEtlWb] {
        let sorted = probe_abort_window(kind, LockOrder::AddressSorted);
        let record = probe_abort_window(kind, LockOrder::RecordOrder);
        assert_eq!(sorted.reason, AbortReason::WriteConflict, "{kind}");
        assert_eq!(record.reason, AbortReason::WriteConflict, "{kind}");

        assert_eq!(
            sorted.wasted_mram_words, 0,
            "{kind}: sorted acquisition must move no data before the conflict surfaces"
        );
        assert_eq!(
            sorted.logged_entries, 0,
            "{kind}: sorted acquisition must log nothing before the conflict surfaces"
        );

        // The baseline pays for the wide abort window: write-through has
        // exposed (and undone) stores for the words before the conflict;
        // write-back has pushed log entries for them.
        match kind {
            StmKind::TinyEtlWt | StmKind::VrEtlWt => assert!(
                record.wasted_mram_words > 0,
                "{kind}: record order should have exposed and rolled back stores \
                 ({} words moved)",
                record.wasted_mram_words
            ),
            _ => assert!(
                record.logged_entries > 0,
                "{kind}: record order should have pushed redo-log entries before failing"
            ),
        }
    }
}

/// Aliased records (longer than the lock table) are acquired once per
/// distinct ORec and still roll back cleanly when the conflict lands on
/// the aliased entry.
#[test]
fn aliased_records_are_deduplicated_and_abort_cleanly() {
    let stm = StmConfig::new(StmKind::TinyEtlWb, MetadataPlacement::Wram)
        .with_lock_table_entries(3)
        .with_read_set_capacity(16)
        .with_write_set_capacity(16);
    let mut dpu = Dpu::new(DpuConfig::small());
    let shared = StmShared::allocate(&mut dpu, stm).expect("metadata fits");
    let mut slot0 = shared.register_tasklet(&mut dpu, 0).expect("logs fit");
    let mut slot1 = shared.register_tasklet(&mut dpu, 1).expect("logs fit");
    let region = dpu.alloc(Tier::Mram, 8).expect("region fits");
    let alg = algorithm_for(StmKind::TinyEtlWb);

    // A 5-word record over a 3-entry table: words 0 and 3 (and 1 and 4)
    // share ORecs. Uncontended, the write must succeed and commit the
    // values exactly.
    let mut stats0 = TaskletStats::new();
    {
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats0, 0, 2, 0);
        alg.begin(&shared, &mut slot0, &mut ctx);
        alg.write_record(&shared, &mut slot0, &mut ctx, region, &[10, 11, 12, 13, 14]).unwrap();
        alg.commit(&shared, &mut slot0, &mut ctx).unwrap();
        for i in 0..5 {
            assert_eq!(ctx.dpu().peek(region.offset(i)), 10 + u64::from(i));
        }
    }

    // Contended on the *aliased* entry: T1 locks word 6 (whose ORec also
    // covers word 0 of the record — 6 % 3 == 0 relative to the region
    // base), so the record write must abort and restore every ORec.
    let mut stats1 = TaskletStats::new();
    {
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats1, 1, 2, 0);
        alg.begin(&shared, &mut slot1, &mut ctx);
        alg.write(&shared, &mut slot1, &mut ctx, region.offset(6), 66).unwrap();
    }
    {
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats0, 0, 2, 0);
        alg.begin(&shared, &mut slot0, &mut ctx);
        let err = alg
            .write_record(&shared, &mut slot0, &mut ctx, region, &[20, 21, 22, 23, 24])
            .expect_err("the aliased ORec is write-locked");
        assert_eq!(err.reason, AbortReason::WriteConflict);
        // A retry after T1 commits succeeds — the aborted attempt restored
        // every ORec it had acquired.
        let mut ctx1 = TaskletCtx::new(&mut dpu, &mut stats1, 1, 2, 0);
        alg.commit(&shared, &mut slot1, &mut ctx1).unwrap();
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats0, 0, 2, 0);
        alg.begin(&shared, &mut slot0, &mut ctx);
        alg.write_record(&shared, &mut slot0, &mut ctx, region, &[20, 21, 22, 23, 24]).unwrap();
        alg.commit(&shared, &mut slot0, &mut ctx).unwrap();
        for i in 0..5 {
            assert_eq!(ctx.dpu().peek(region.offset(i)), 20 + u64::from(i));
        }
    }
}

/// Conservation under real concurrency, for both orders and all three
/// encounter-time compositions: heavily contended grouped ArrayBench-B
/// runs (wrapping lock table) must commit every transaction and lose no
/// increments. (The duel-*rate* comparison between orders is not asserted:
/// on a time-slicing host the counts are preemption-noise-dominated — see
/// the module docs.)
#[test]
fn both_orders_conserve_updates_for_every_etl_composition() {
    let cfg = ArrayBenchConfig { transactions_per_tasklet: 150, ..grouped_workload_b() };
    for kind in [StmKind::TinyEtlWb, StmKind::TinyEtlWt, StmKind::VrEtlWb, StmKind::VrEtlWt] {
        for order in LockOrder::ALL {
            let stm = StmConfig::new(kind, MetadataPlacement::Mram)
                .with_read_set_capacity(cfg.read_set_capacity())
                .with_write_set_capacity(cfg.write_set_capacity())
                .with_lock_table_entries(5)
                .with_lock_order(order);
            let mut dpu = ThreadedDpu::new(stm).expect("metadata fits");
            let (data, report) = run_threaded(&mut dpu, cfg, 6, 42).expect("run schedulable");
            let expected_commits = u64::from(cfg.transactions_per_tasklet) * 6;
            assert_eq!(report.commits, expected_commits, "{kind} ({order}): lost transactions");
            assert_eq!(
                data.update_region_sum(&dpu),
                expected_commits * u64::from(cfg.updates_applied_per_tx()),
                "{kind} ({order}): lost updates"
            );
        }
    }
}
