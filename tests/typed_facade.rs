//! The typed `TVar`/`TArray` facade, end to end:
//!
//! * property tests: every [`TxWord`] implementation round-trips through its
//!   word encoding, and fixed arrays round-trip as [`TxRecord`]s;
//! * the acceptance test of the API redesign: **one generic transaction
//!   body**, written against [`TxOps`], preserves balance conservation on
//!   the threaded executor *and* on the cycle-accounted simulator for all
//!   seven STM designs;
//! * record operations move multi-word values consistently on both
//!   executors, and NOrec fetches them as one MRAM DMA burst (cheaper than
//!   word-wise reads).

use proptest::prelude::*;

use pim_stm_suite::sim::{Dpu, DpuConfig, TaskletCtx, TaskletStats, Tier};
use pim_stm_suite::stm::threaded::ThreadedDpu;
use pim_stm_suite::stm::var::{self, TArray, TVar};
use pim_stm_suite::stm::{
    Abort, MetadataPlacement, RunError, StmConfig, StmKind, StmShared, TxEngine, TxOps, TxRecord,
    TxWord,
};

// ---------------------------------------------------------------------------
// TxWord / TxRecord round-trips
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `u64` encoding is the identity.
    #[test]
    fn u64_roundtrips(value in any::<u64>()) {
        prop_assert_eq!(u64::decode(value.encode()), value);
    }

    /// `i64` round-trips through the word encoding, sign included.
    #[test]
    fn i64_roundtrips(value in any::<i64>()) {
        prop_assert_eq!(i64::decode(value.encode()), value);
    }

    /// `u32` round-trips through the word encoding.
    #[test]
    fn u32_roundtrips(value in any::<u32>()) {
        prop_assert_eq!(u32::decode(value.encode()), value);
    }

    /// `i32` round-trips through the word encoding, sign included.
    #[test]
    fn i32_roundtrips(value in any::<i32>()) {
        prop_assert_eq!(i32::decode(value.encode()), value);
    }

    /// `bool` round-trips through the word encoding.
    #[test]
    fn bool_roundtrips(value in any::<bool>()) {
        prop_assert_eq!(bool::decode(value.encode()), value);
    }

    /// `f64` round-trips **bit-exactly** (the bit-cast encoding preserves
    /// NaN payloads, signed zeros and infinities).
    #[test]
    fn f64_roundtrips_bit_exactly(bits in any::<u64>()) {
        let value = f64::from_bits(bits);
        prop_assert_eq!(f64::decode(value.encode()).to_bits(), bits);
    }

    /// `(u32, u32)` pairs round-trip through the packed encoding.
    #[test]
    fn u32_pair_roundtrips(hi in any::<u32>(), lo in any::<u32>()) {
        prop_assert_eq!(<(u32, u32)>::decode((hi, lo).encode()), (hi, lo));
    }

    /// Fixed arrays round-trip through the record encoding.
    #[test]
    fn u64_array_record_roundtrips(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let record = [a, b, c];
        let mut words = [0u64; 3];
        record.encode_into(&mut words);
        prop_assert_eq!(<[u64; 3]>::decode_from(&words), record);
    }

    /// Arrays of non-trivial words compose: encode/decode goes through the
    /// element encoding.
    #[test]
    fn i64_array_record_roundtrips(a in any::<i64>(), b in any::<i64>()) {
        let record = [a, b];
        let mut words = [0u64; 2];
        record.encode_into(&mut words);
        prop_assert_eq!(<[i64; 2]>::decode_from(&words), record);
        prop_assert_eq!(words[0], a.encode());
    }
}

// ---------------------------------------------------------------------------
// One generic body, both executors, all seven designs
// ---------------------------------------------------------------------------

const ACCOUNTS: u32 = 8;
const INITIAL_BALANCE: u64 = 1_000;

/// The generic bank-transfer body of the acceptance criterion: written once
/// against `TxOps`, used below on the threaded executor (via `TaskletTx`,
/// whose bodies receive a `TxView`) and on the simulator (via `TxEngine`).
fn transfer<O: TxOps>(tx: &mut O, accounts: TArray<u64>, from: u32, to: u32) -> Result<(), Abort> {
    let a = tx.get(accounts.at(from))?;
    let b = tx.get(accounts.at(to))?;
    tx.set(accounts.at(from), a.wrapping_sub(1))?;
    tx.set(accounts.at(to), b.wrapping_add(1))?;
    Ok(())
}

fn small_config(kind: StmKind) -> StmConfig {
    StmConfig::new(kind, MetadataPlacement::Wram)
        .with_lock_table_entries(128)
        .with_read_set_capacity(64)
        .with_write_set_capacity(32)
}

#[test]
fn generic_body_conserves_balance_on_the_threaded_executor() {
    for kind in StmKind::ALL {
        let mut dpu = ThreadedDpu::new(small_config(kind)).expect("metadata fits");
        let accounts: TArray<u64> = dpu.alloc_array(Tier::Mram, ACCOUNTS).expect("data fits");
        for i in 0..ACCOUNTS {
            dpu.poke_var(accounts.at(i), INITIAL_BALANCE);
        }
        let report = dpu
            .run(4, |mut tasklet| {
                let id = tasklet.tasklet_id() as u32;
                for step in 0..100u32 {
                    let from = (id * 5 + step) % ACCOUNTS;
                    let to = (id * 3 + step * 7 + 1) % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    tasklet.transaction(|tx| transfer(tx, accounts, from, to));
                }
            })
            .expect("4 tasklets is within the hardware limit");
        let total: u64 = (0..ACCOUNTS).map(|i| dpu.peek_var(accounts.at(i))).sum();
        assert_eq!(
            total,
            u64::from(ACCOUNTS) * INITIAL_BALANCE,
            "{kind}: threaded executor violated conservation"
        );
        assert!(report.commits > 0, "{kind}: nothing committed");
    }
}

#[test]
fn the_same_generic_body_conserves_balance_on_the_simulator() {
    for kind in StmKind::ALL {
        let mut dpu = Dpu::new(DpuConfig::small());
        let shared = StmShared::allocate(&mut dpu, small_config(kind)).expect("metadata fits");
        let accounts: TArray<u64> =
            var::alloc_array(&mut dpu, Tier::Mram, ACCOUNTS).expect("data fits");
        for i in 0..ACCOUNTS {
            var::poke_var(&mut dpu, accounts.at(i), INITIAL_BALANCE);
        }
        // Two tasklets, driven through the engine — the *same* `transfer`
        // function the threaded test uses, now cycle-accounted.
        let mut engines: Vec<TxEngine> = (0..2)
            .map(|t| {
                let slot = shared.register_tasklet(&mut dpu, t).expect("logs fit");
                TxEngine::for_shared(shared.clone(), slot)
            })
            .collect();
        let mut stats = [TaskletStats::new(), TaskletStats::new()];
        let mut cycles = 0u64;
        for step in 0..100u32 {
            for t in 0..2u32 {
                let from = (t * 5 + step) % ACCOUNTS;
                let to = (t * 3 + step * 7 + 1) % ACCOUNTS;
                if from == to {
                    continue;
                }
                let mut ctx =
                    TaskletCtx::new(&mut dpu, &mut stats[t as usize], t as usize, 2, cycles);
                engines[t as usize].transaction(&mut ctx, |tx| transfer(tx, accounts, from, to));
                cycles = ctx.now();
            }
        }
        let total: u64 = (0..ACCOUNTS).map(|i| var::peek_var(&dpu, accounts.at(i))).sum();
        assert_eq!(
            total,
            u64::from(ACCOUNTS) * INITIAL_BALANCE,
            "{kind}: simulator violated conservation"
        );
        let commits: u64 = engines.iter().map(|e| e.commits()).sum();
        assert!(commits > 0, "{kind}: nothing committed on the simulator");
        assert!(cycles > 0, "{kind}: the simulator must account cycles");
    }
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// Reads a 4-word record, rotates it, writes it back — generic over the
/// executor, moved as one DMA burst where the design supports it.
fn rotate_record<O: TxOps>(tx: &mut O, rec: TVar<[u64; 4]>) -> Result<(), Abort> {
    let mut value = tx.read_record(rec)?;
    value.rotate_left(1);
    tx.write_record(rec, value)?;
    Ok(())
}

#[test]
fn records_move_consistently_on_both_executors() {
    for kind in StmKind::ALL {
        // Threaded.
        let mut dpu = ThreadedDpu::new(small_config(kind)).expect("metadata fits");
        let rec: TVar<[u64; 4]> = dpu.alloc_var(Tier::Mram).expect("data fits");
        dpu.poke_var(rec, [1, 2, 3, 4]);
        dpu.run(2, |mut tasklet| {
            for _ in 0..2 {
                tasklet.transaction(|tx| rotate_record(tx, rec));
            }
        })
        .expect("2 tasklets is within the hardware limit");
        // Four rotations of a 4-word record restore the original value.
        assert_eq!(dpu.peek_var(rec), [1, 2, 3, 4], "{kind}: threaded record rotation");

        // Simulated.
        let mut dpu = Dpu::new(DpuConfig::small());
        let shared = StmShared::allocate(&mut dpu, small_config(kind)).expect("metadata fits");
        let slot = shared.register_tasklet(&mut dpu, 0).expect("logs fit");
        let rec: TVar<[u64; 4]> = var::alloc_var(&mut dpu, Tier::Mram).expect("data fits");
        var::poke_var(&mut dpu, rec, [10, 20, 30, 40]);
        let mut engine = TxEngine::for_shared(shared, slot);
        let mut stats = TaskletStats::new();
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
        engine.transaction(&mut ctx, |tx| rotate_record(tx, rec));
        assert_eq!(var::peek_var(&dpu, rec), [20, 30, 40, 10], "{kind}: simulated record rotation");
    }
}

#[test]
fn read_record_after_write_record_sees_buffered_values() {
    // Read-after-write inside one transaction must serve the record from the
    // transaction's own buffers (NOrec additionally skips the DMA burst and
    // validation entirely on this path).
    for kind in StmKind::ALL {
        let mut dpu = Dpu::new(DpuConfig::small());
        let shared = StmShared::allocate(&mut dpu, small_config(kind)).expect("metadata fits");
        let slot = shared.register_tasklet(&mut dpu, 0).expect("logs fit");
        let rec: TVar<[u64; 4]> = var::alloc_var(&mut dpu, Tier::Mram).expect("data fits");
        let mut engine = TxEngine::for_shared(shared, slot);
        let mut stats = TaskletStats::new();
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
        let observed = engine.transaction(&mut ctx, |tx| {
            tx.write_record(rec, [7, 8, 9, 10])?;
            tx.read_record(rec)
        });
        assert_eq!(observed, [7, 8, 9, 10], "{kind}: read-after-write on a record");
    }
}

#[test]
fn norec_short_record_reads_merge_partial_redo_log_coverage() {
    // A <=64-word record with *some* words in the redo log exercises the
    // bitmask merge branch: buffered words must survive the burst, the rest
    // must come from memory.
    let mut dpu = Dpu::new(DpuConfig::small());
    let shared =
        StmShared::allocate(&mut dpu, small_config(StmKind::Norec)).expect("metadata fits");
    let slot = shared.register_tasklet(&mut dpu, 0).expect("logs fit");
    let rec: TVar<[u64; 4]> = var::alloc_var(&mut dpu, Tier::Mram).expect("data fits");
    var::poke_var(&mut dpu, rec, [10, 20, 30, 40]);
    let mut engine = TxEngine::for_shared(shared, slot);
    let mut stats = TaskletStats::new();
    let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
    let observed = engine.transaction(&mut ctx, |tx| {
        tx.write_word(rec.addr().offset(1), 99)?;
        tx.read_record(rec)
    });
    assert_eq!(observed, [10, 99, 30, 40], "buffered word 1 must override the burst");
    assert_eq!(var::peek_var(&dpu, rec), [10, 99, 30, 40], "commit publishes the write");
}

#[test]
fn norec_long_record_reads_merge_the_redo_log_correctly() {
    // Records longer than 64 words take NOrec's non-bitmask fallback branch
    // (post-burst overlay); unreachable through the typed facade (capped at
    // MAX_RECORD_WORDS), so exercise it through the raw word API.
    const LEN: usize = 100;
    let mut dpu = Dpu::new(DpuConfig::small());
    let config = small_config(StmKind::Norec).with_read_set_capacity(256);
    let shared = StmShared::allocate(&mut dpu, config).expect("metadata fits");
    let slot = shared.register_tasklet(&mut dpu, 0).expect("logs fit");
    let base = dpu.alloc(Tier::Mram, LEN as u32).expect("data fits");
    for i in 0..LEN as u32 {
        dpu.poke(base.offset(i), u64::from(i));
    }
    let mut engine = TxEngine::for_shared(shared, slot);
    let mut stats = TaskletStats::new();
    let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
    let buf = engine.transaction(&mut ctx, |tx| {
        tx.write_word(base.offset(5), 555)?;
        tx.write_word(base.offset(70), 777)?;
        let mut buf = vec![0u64; LEN];
        tx.read_words(base, &mut buf)?;
        Ok(buf)
    });
    for (i, &word) in buf.iter().enumerate() {
        let expected = match i {
            5 => 555,
            70 => 777,
            _ => i as u64,
        };
        assert_eq!(word, expected, "word {i} of the long record");
    }
    // The commit published the buffered writes.
    assert_eq!(dpu.peek(base.offset(5)), 555);
    assert_eq!(dpu.peek(base.offset(70)), 777);
}

#[test]
fn norec_record_reads_are_cheaper_than_word_wise_reads() {
    // NOrec overrides `read_record` to fetch the record as one MRAM DMA
    // burst (setup paid once); reading the same words one by one pays the
    // setup per word. The cycle accounting must reflect that.
    let words = 16u32;
    let cost_of = |record: bool| -> u64 {
        let mut dpu = Dpu::new(DpuConfig::small());
        let shared =
            StmShared::allocate(&mut dpu, small_config(StmKind::Norec)).expect("metadata fits");
        let slot = shared.register_tasklet(&mut dpu, 0).expect("logs fit");
        let base = dpu.alloc(Tier::Mram, words).expect("data fits");
        let mut engine = TxEngine::for_shared(shared, slot);
        let mut stats = TaskletStats::new();
        let mut ctx = TaskletCtx::new(&mut dpu, &mut stats, 0, 1, 0);
        engine.transaction(&mut ctx, |tx| {
            if record {
                let rec: TVar<[u64; 16]> = TVar::new(base);
                tx.read_record(rec)?;
            } else {
                for i in 0..words {
                    tx.read_word(base.offset(i))?;
                }
            }
            Ok(())
        });
        ctx.now()
    };
    let word_wise = cost_of(false);
    let burst = cost_of(true);
    assert!(
        burst < word_wise,
        "NOrec 16-word record read ({burst} cycles) must beat 16 single reads ({word_wise})"
    );
}

// ---------------------------------------------------------------------------
// Error surface of the redesigned entry point
// ---------------------------------------------------------------------------

#[test]
fn oversubscribing_tasklets_reports_an_error() {
    let mut dpu = ThreadedDpu::new(small_config(StmKind::Norec)).expect("metadata fits");
    match dpu.run(64, |_| {}) {
        Err(RunError::TooManyTasklets { requested, max }) => {
            assert_eq!(requested, 64);
            assert_eq!(max, 24);
        }
        other => panic!("expected TooManyTasklets, got {other:?}"),
    }
}
