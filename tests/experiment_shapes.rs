//! Integration tests asserting the qualitative *shapes* the paper reports —
//! the same checks EXPERIMENTS.md documents, executed at reduced scale so
//! they stay test-suite friendly.

use pim_stm_suite::exp::design_space::DesignSpaceSweep;
use pim_stm_suite::exp::latency::LatencyComparison;
use pim_stm_suite::sim::Phase;
use pim_stm_suite::stm::{MetadataPlacement, StmKind};
use pim_stm_suite::workloads::{RunSpec, Workload};

/// §3.1: a CPU-mediated remote read is roughly three orders of magnitude
/// slower than a local MRAM read — the fact that motivates DPU-local
/// transactions.
#[test]
fn remote_reads_are_three_orders_of_magnitude_slower() {
    let cmp = LatencyComparison::measure();
    assert!(cmp.ratio() > 500.0 && cmp.ratio() < 5000.0, "ratio {} out of range", cmp.ratio());
}

/// Fig. 4a: visible reads avoid read-set validation entirely, whereas NOrec
/// pays for value-based validation on ArrayBench A's large read sets.
#[test]
fn visible_reads_skip_validation_on_arraybench_a() {
    let norec = RunSpec::new(Workload::ArrayA, StmKind::Norec, MetadataPlacement::Mram, 8)
        .with_scale(0.1)
        .run();
    let vr = RunSpec::new(Workload::ArrayA, StmKind::VrEtlWb, MetadataPlacement::Mram, 8)
        .with_scale(0.1)
        .run();
    let validation = |report: &pim_stm_suite::sim::DpuRunReport| {
        let b = report.breakdown();
        b.get(Phase::ValidatingExec) + b.get(Phase::ValidatingCommit)
    };
    assert_eq!(validation(&vr), 0, "VR must never validate its read set");
    assert!(validation(&norec) > 0, "NOrec must validate under concurrent commits");
}

/// Fig. 4/6: the "no one-size-fits-all" headline. On ArrayBench A (large,
/// mostly-read transactions) the validation burden falls on NOrec — it spends
/// a larger share of its cycles validating than any other design — while on
/// ArrayBench B (tiny contended read-modify-write transactions) NOrec's peak
/// throughput beats the commit-time visible-reads variant.
#[test]
fn relative_ranking_flips_between_arraybench_a_and_b() {
    let sweep_a = DesignSpaceSweep::run(Workload::ArrayA, MetadataPlacement::Mram, &[8], 0.1, 42);
    let validation_share = |kind: StmKind| {
        let b = sweep_a.point(kind, 8).expect("point was swept").profile.phases();
        b.fraction(Phase::ValidatingExec) + b.fraction(Phase::ValidatingCommit)
    };
    // The invisible-reads designs pay for (re)validating their large read
    // sets; the visible-reads designs never validate at all.
    for invisible in [StmKind::Norec, StmKind::TinyEtlWb] {
        for visible in [StmKind::VrEtlWb, StmKind::VrEtlWt, StmKind::VrCtlWb] {
            assert!(
                validation_share(invisible) > validation_share(visible),
                "ArrayBench A: {invisible} should validate more than {visible}"
            );
        }
    }

    let sweep_b = DesignSpaceSweep::run(Workload::ArrayB, MetadataPlacement::Mram, &[8], 0.25, 42);
    assert!(
        sweep_b.peak_throughput(StmKind::Norec) > sweep_b.peak_throughput(StmKind::VrCtlWb),
        "ArrayBench B: NOrec should beat the commit-time visible-reads variant"
    );
}

/// §4.2.3: moving the STM metadata from MRAM to WRAM speeds up a
/// transaction-dominated workload substantially.
#[test]
fn wram_metadata_accelerates_transaction_heavy_workloads() {
    let mram = RunSpec::new(Workload::ArrayB, StmKind::TinyEtlWb, MetadataPlacement::Mram, 8)
        .with_scale(0.25)
        .run();
    let wram = RunSpec::new(Workload::ArrayB, StmKind::TinyEtlWb, MetadataPlacement::Wram, 8)
        .with_scale(0.25)
        .run();
    let speedup = wram.throughput_tx_per_sec() / mram.throughput_tx_per_sec();
    assert!(
        speedup > 1.3,
        "WRAM metadata should clearly accelerate ArrayBench B (got {speedup:.2}x)"
    );
}

/// Fig. 4c/d: the visible-reads designs suffer far more aborts than the
/// invisible-reads designs on the linked list, where every update is an
/// upgrade of a previously read location.
#[test]
fn visible_reads_abort_more_on_the_linked_list() {
    let vr = RunSpec::new(Workload::ListHc, StmKind::VrEtlWb, MetadataPlacement::Mram, 8)
        .with_scale(0.5)
        .run();
    let tiny = RunSpec::new(Workload::ListHc, StmKind::TinyEtlWb, MetadataPlacement::Mram, 8)
        .with_scale(0.5)
        .run();
    assert!(
        vr.abort_rate() > tiny.abort_rate(),
        "VR ({:.1}%) should abort more than Tiny ({:.1}%) on the HC linked list",
        vr.abort_rate() * 100.0,
        tiny.abort_rate() * 100.0
    );
}

/// Fig. 5c/d: Labyrinth is memory bound; going from 5 to 11 tasklets buys
/// far less than the 2.2x a compute-bound workload would gain, because the
/// shared MRAM port saturates.
#[test]
fn labyrinth_saturates_the_mram_port_before_eleven_tasklets() {
    let five = RunSpec::new(Workload::LabyrinthS, StmKind::Norec, MetadataPlacement::Mram, 5)
        .with_scale(0.3)
        .run();
    let eleven = RunSpec::new(Workload::LabyrinthS, StmKind::Norec, MetadataPlacement::Mram, 11)
        .with_scale(0.3)
        .run();
    let scaling = eleven.throughput_tx_per_sec() / five.throughput_tx_per_sec();
    assert!(
        scaling < 1.8,
        "Labyrinth should not scale linearly past 5 tasklets (got {scaling:.2}x from 5 to 11)"
    );
}

/// Fig. 5a: KMeans LC spends most of its time outside transactions, so the
/// choice of STM barely matters for NOrec and the encounter-time designs
/// (the paper observes near-identical peak throughput for those; the
/// commit-time variants trail and are excluded here as they are in the
/// paper's discussion of this plot).
#[test]
fn kmeans_lc_is_insensitive_to_the_stm_choice() {
    let sweep = DesignSpaceSweep::run(Workload::KmeansLc, MetadataPlacement::Mram, &[8], 0.3, 42);
    let etl_designs = [
        StmKind::Norec,
        StmKind::TinyEtlWb,
        StmKind::TinyEtlWt,
        StmKind::VrEtlWb,
        StmKind::VrEtlWt,
    ];
    let best = etl_designs.iter().map(|&k| sweep.peak_throughput(k)).fold(0.0, f64::max);
    let worst = etl_designs.iter().map(|&k| sweep.peak_throughput(k)).fold(f64::INFINITY, f64::min);
    assert!(
        best / worst < 2.5,
        "KMeans LC should not separate NOrec/ETL designs by more than ~2x (got {:.2}x)",
        best / worst
    );
}
