//! Offline mini-implementation of [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset the workspace's bench targets use: `Criterion::benchmark_group`,
//! group tuning knobs, `bench_function` with `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical pipeline it runs a fixed number of timed iterations and
//! prints the mean and minimum per-iteration wall time — enough to eyeball
//! regressions and to keep `cargo bench` working end to end.

use std::time::{Duration, Instant};

/// Top-level benchmark driver (a stand-in for criterion's `Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10 }
    }
}

/// A named set of benchmarks sharing tuning parameters.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Accepted for API compatibility; the stub has no warm-up phase beyond
    /// one untimed iteration.
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub always runs `sample_size`
    /// iterations regardless of elapsed time.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Times `f` and prints per-iteration statistics.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: self.sample_size, total: Duration::ZERO, min: None };
        f(&mut bencher);
        let iters = bencher.samples as u32;
        let mean = bencher.total / iters.max(1);
        let min = bencher.min.unwrap_or(Duration::ZERO);
        println!("bench {}/{id}: mean {mean:?}, min {min:?} over {iters} iterations", self.name);
        self
    }

    /// Ends the group (criterion finalises reports here; the stub prints as
    /// it goes).
    pub fn finish(self) {}
}

/// Timing handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    min: Option<Duration>,
}

impl Bencher {
    /// Runs `f` once untimed, then `sample_size` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.min = Some(self.min.map_or(elapsed, |m| m.min(elapsed)));
        }
    }
}

/// Opaque value barrier, so the optimiser cannot delete benchmarked work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3).warm_up_time(Duration::from_millis(1));
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // One warm-up + three timed iterations.
        assert_eq!(runs, 4);
    }
}
