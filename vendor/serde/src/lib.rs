//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides just
//! enough of serde's surface for the workspace to compile: the two derive
//! macros (no-ops) and the trait names they nominally implement. Swapping in
//! the real serde is a one-line change in the workspace manifest.

/// Marker trait matching `serde::Serialize` by name.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize` by name.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
