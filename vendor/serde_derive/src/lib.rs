//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the minimal surface it uses. Nothing in the
//! reproduction serialises data yet — the `#[derive(Serialize, Deserialize)]`
//! annotations exist so the types are ready for a real serde once the
//! registry is reachable — so these derives expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; accepts the same positions as serde's `Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts the same positions as serde's `Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
