//! Offline mini-implementation of [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   inner attribute) expanding each `fn name(arg in strategy, ..)` item into
//!   an ordinary `#[test]` that samples the strategies `cases` times;
//! * [`Strategy`] with `prop_map`, implemented for integer ranges, tuples
//!   and the combinators below;
//! * [`any`] for the primitive types the tests draw;
//! * `prop::sample::select`, `prop::collection::vec` and
//!   `prop::collection::btree_set`;
//! * the `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure seeds;
//! generation is deterministic per test (seeded from the test name, with a
//! `PROPTEST_SEED` environment override) so failures reproduce exactly.

use std::ops::Range;

/// SplitMix64 generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator seeded from the test name (stable across runs)
    /// xor'd with the optional `PROPTEST_SEED` environment variable.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(env) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = env.parse::<u64>() {
                seed ^= extra;
            }
        }
        TestRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range handed to a proptest strategy");
        self.next_u64() % bound
    }
}

/// Error produced by the `prop_assert*` macros; aborts the current case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// How many cases each test runs (see `#![proptest_config(..)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) }

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Combinator namespace mirroring proptest's `prop` module.
pub mod prop {
    /// Strategies drawing from explicit value sets.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed list.
        #[derive(Debug, Clone)]
        pub struct Select<T>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }

        /// Chooses one of `items` uniformly (panics on an empty list).
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select requires a non-empty list");
            Select(items)
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::collections::BTreeSet;
        use std::ops::Range;

        /// Strategy for `Vec`s with a size drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.generate(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Vector of `size` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// Strategy for `BTreeSet`s with a target size drawn from a range.
        #[derive(Debug, Clone)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let target = self.size.generate(rng);
                let mut set = BTreeSet::new();
                // Bounded attempts: the element space may hold fewer than
                // `target` distinct values.
                for _ in 0..target.saturating_mul(16) {
                    if set.len() >= target {
                        break;
                    }
                    set.insert(self.element.generate(rng));
                }
                set
            }
        }

        /// Set of up to `size` distinct elements drawn from `element`.
        pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
            BTreeSetStrategy { element, size }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Expands `fn name(arg in strategy, ..) { body }` items into `#[test]`s.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: one test item per recursion step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let mut inputs = ::std::string::String::new();
                $(
                    inputs.push_str(&format!("{} = {:?}; ", stringify!($arg), &$arg));
                )+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case} failed: {}\n  inputs: {}",
                        e.0, inputs
                    );
                }
            }
        }
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let s = (-3i64..4).generate(&mut rng);
            assert!((-3..4).contains(&s));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro front-end compiles and samples tuples, maps and
        /// collections.
        #[test]
        fn macro_roundtrip(
            pair in (0u32..10, any::<bool>()).prop_map(|(n, b)| (n * 2, b)),
            items in prop::collection::vec(0u8..4, 0..8),
            pick in prop::sample::select(vec![1u8, 2, 3]),
        ) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(items.len() < 8);
            prop_assert_ne!(pick, 0);
            prop_assert_eq!(pick as usize, pick as usize);
        }
    }
}
